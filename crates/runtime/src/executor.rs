//! The controlled-execution substrate (paper §7.3–§7.5, adapted).
//!
//! C11Tester implements application threads as fibers and borrows a
//! kernel thread's context for TLS (§7.4). In Rust, each model thread
//! *is* an OS thread, so TLS works natively; what this module provides
//! is the same observable discipline the fibers gave the paper's tool:
//!
//! * at most one model thread runs at any instant — the *run token*;
//! * the token moves only at visible operations, to the exact thread
//!   the testing strategy chose;
//! * blocked or descheduled threads wait in their [`Notifier`] mailbox;
//! * aborting an execution (deadlock, assertion failure, race-as-fatal)
//!   poisons the runtime and wakes every parked thread so it can unwind
//!   and exit cleanly.
//!
//! The memory-model engine, the enabled-set bookkeeping, and the
//! scheduling policy live a layer above (in the `c11tester` facade);
//! this module is deliberately mechanism-only.

use crate::handover::{HandoverKind, Notifier};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Panic payload used to unwind model threads when an execution aborts.
/// The runtime swallows it at each thread's root; user `Drop` code runs
/// during the unwind, so model operations detect poisoning and re-raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

/// The run-token runtime: one slot (mailbox) per model thread.
#[derive(Debug)]
pub struct Runtime {
    kind: HandoverKind,
    slots: Mutex<Vec<Arc<Notifier>>>,
    poisoned: AtomicBool,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Runtime {
    /// Creates a runtime using the given handover strategy.
    pub fn new(kind: HandoverKind) -> Arc<Self> {
        Arc::new(Runtime {
            kind,
            slots: Mutex::new(Vec::new()),
            poisoned: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
        })
    }

    /// The handover strategy in use.
    pub fn handover_kind(&self) -> HandoverKind {
        self.kind
    }

    /// Allocates a mailbox slot for a new model thread and returns its
    /// index. Slot indices match the engine's `ThreadId::index()`.
    pub fn add_slot(&self) -> usize {
        let mut slots = self.slots.lock();
        slots.push(Arc::new(Notifier::new(self.kind)));
        slots.len() - 1
    }

    fn slot(&self, ix: usize) -> Arc<Notifier> {
        Arc::clone(&self.slots.lock()[ix])
    }

    /// Binds the calling OS thread as the owner of slot `ix` (required
    /// before the first `park` on strategies that need a thread handle).
    pub fn bind_current(&self, ix: usize) {
        self.slot(ix).bind_current();
    }

    /// Hands the run token to model thread `ix`.
    pub fn wake(&self, ix: usize) {
        self.slot(ix).notify();
    }

    /// Parks the calling model thread until its mailbox receives a
    /// token.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] if the execution was poisoned — the caller
    /// must unwind (e.g. via `std::panic::panic_any(Aborted)`).
    pub fn park(&self, ix: usize) -> Result<(), Aborted> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(Aborted);
        }
        self.slot(ix).wait();
        if self.poisoned.load(Ordering::Acquire) {
            return Err(Aborted);
        }
        Ok(())
    }

    /// Spawns the OS thread backing model thread `ix`. The thread
    /// binds its mailbox, waits to be scheduled for the first time, and
    /// then runs `body`. Panics escaping `body` are swallowed here; the
    /// facade records failures before unwinding.
    pub fn spawn(self: &Arc<Self>, ix: usize, body: Box<dyn FnOnce() + Send>) {
        let rt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("c11tester-model-{ix}"))
            .spawn(move || {
                rt.bind_current(ix);
                if rt.park(ix).is_err() {
                    return;
                }
                let _ = catch_unwind(AssertUnwindSafe(body));
            })
            .expect("failed to spawn model thread");
        self.handles.lock().push(handle);
    }

    /// Poisons the execution and wakes every parked thread so it can
    /// observe the poison and unwind.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let slots: Vec<Arc<Notifier>> = self.slots.lock().iter().cloned().collect();
        for s in slots {
            s.notify();
        }
    }

    /// Whether the execution was aborted.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Joins all OS threads spawned for this execution. Call only after
    /// the execution completed or was poisoned.
    pub fn join_all(&self) {
        let handles: Vec<JoinHandle<()>> = self.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Three model threads pass the token around a fixed ring; the
    /// visit order must be exactly the handover order — proof that only
    /// one thread runs at a time and control moves where directed.
    #[test]
    fn token_ring_runs_in_order() {
        let rt = Runtime::new(HandoverKind::Park);
        let log = Arc::new(Mutex::new(Vec::new()));
        let counter = Arc::new(AtomicUsize::new(0));

        let main_slot = rt.add_slot();
        rt.bind_current(main_slot);
        let mut slots = vec![main_slot];
        for _ in 0..3 {
            slots.push(rt.add_slot());
        }
        for (k, &ix) in slots.iter().enumerate().skip(1) {
            let rt2 = Arc::clone(&rt);
            let log2 = Arc::clone(&log);
            let counter2 = Arc::clone(&counter);
            let next = if k == 3 { main_slot } else { slots[k + 1] };
            rt.spawn(
                ix,
                Box::new(move || {
                    for round in 0..5 {
                        log2.lock().push((ix, round));
                        counter2.fetch_add(1, Ordering::Relaxed);
                        rt2.wake(next);
                        if round < 4 && rt2.park(ix).is_err() {
                            return;
                        }
                    }
                }),
            );
        }
        // Kick the ring and wait for it to come back around 5 times.
        for _ in 0..5 {
            rt.wake(slots[1]);
            rt.park(main_slot).expect("not poisoned");
        }
        rt.join_all();
        assert_eq!(counter.load(Ordering::Relaxed), 15);
        let log = log.lock();
        // Per round, threads appear in ring order.
        for round in 0..5 {
            let entries: Vec<usize> = log
                .iter()
                .filter(|(_, r)| *r == round)
                .map(|(ix, _)| *ix)
                .collect();
            assert_eq!(entries, vec![slots[1], slots[2], slots[3]]);
        }
    }

    /// Poisoning wakes parked threads and park reports the abort.
    #[test]
    fn poison_unblocks_parked_threads() {
        let rt = Runtime::new(HandoverKind::Park);
        let parked = rt.add_slot();
        let witnessed_abort = Arc::new(AtomicBool::new(false));
        let w2 = Arc::clone(&witnessed_abort);
        let rt2 = Arc::clone(&rt);
        rt.spawn(
            parked,
            Box::new(move || {
                // Parks forever unless poisoned.
                if rt2.park(parked).is_err() {
                    w2.store(true, Ordering::Release);
                    std::panic::panic_any(Aborted);
                }
            }),
        );
        // Let the thread start and park (first park is inside spawn).
        rt.wake(parked);
        std::thread::sleep(std::time::Duration::from_millis(20));
        rt.poison();
        rt.join_all();
        assert!(witnessed_abort.load(Ordering::Acquire));
        assert!(rt.is_poisoned());
    }

    /// A spawned thread that is never scheduled exits cleanly on abort.
    #[test]
    fn unscheduled_thread_exits_on_poison() {
        let rt = Runtime::new(HandoverKind::Park);
        let ix = rt.add_slot();
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        rt.spawn(
            ix,
            Box::new(move || {
                r2.store(true, Ordering::Release);
            }),
        );
        rt.poison();
        rt.join_all();
        assert!(
            !ran.load(Ordering::Acquire),
            "body must not run after abort"
        );
    }

    /// park after poison returns the abort error immediately.
    #[test]
    fn park_after_poison_errors() {
        let rt = Runtime::new(HandoverKind::Park);
        let ix = rt.add_slot();
        rt.bind_current(ix);
        rt.poison();
        assert_eq!(rt.park(ix), Err(Aborted));
    }
}
