//! Pluggable testing strategies (paper §3).
//!
//! C11Tester splits exploration into two choices per step: *which
//! thread runs next* and *which behavior its operation takes* (for a
//! load: which store it reads from). Plugins make both choices; the
//! default plugin is random. We additionally ship a "burst" scheduler
//! that emulates an OS scheduler for the tsan11 baseline: it keeps the
//! current thread running for a geometrically distributed quantum,
//! which is how uncontrolled kernel scheduling looks to the tool.

use c11tester_core::ThreadId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A testing strategy: picks successor threads and load behaviors.
///
/// Implementations must be deterministic functions of their seed so
/// executions can be replayed (the facade derives one seed per
/// execution from the model seed and the execution index).
pub trait Scheduler: Send {
    /// Picks the next thread to run from the non-empty `enabled` set.
    /// `current` is the thread that just announced an operation; it is
    /// present in `enabled` unless it blocked or finished.
    fn next_thread(&mut self, enabled: &[ThreadId], current: ThreadId) -> ThreadId;

    /// Picks which of `n ≥ 1` feasible stores a load reads (an index
    /// into the feasible candidate list). Uniform choice over the
    /// feasible set matches the paper's retry loop distribution.
    fn choose_read(&mut self, n: usize) -> usize;

    /// Called once per execution before any events, with the execution
    /// index (0-based) — lets stateful strategies vary across runs.
    fn begin_execution(&mut self, execution_index: u64);

    /// Hint that the program requested extra schedule perturbation
    /// (the `sleep` calls the tsan11 benchmarks rely on, §8.3). The
    /// default is a no-op; burst schedulers end their quantum.
    fn perturb(&mut self) {}
}

/// The default plugin: uniform random choices (paper §3, "The default
/// plugin implements a random strategy").
#[derive(Debug)]
pub struct RandomScheduler {
    base_seed: u64,
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random strategy with the given base seed.
    pub fn new(base_seed: u64) -> Self {
        RandomScheduler {
            base_seed,
            rng: StdRng::seed_from_u64(base_seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn next_thread(&mut self, enabled: &[ThreadId], _current: ThreadId) -> ThreadId {
        enabled[self.rng.gen_range(0..enabled.len())]
    }

    fn choose_read(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    fn begin_execution(&mut self, execution_index: u64) {
        // Split the seed stream so executions differ but replay exactly.
        self.rng = StdRng::seed_from_u64(
            self.base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(execution_index),
        );
    }
}

/// OS-scheduler emulation for the tsan11 baseline: the current thread
/// keeps running for a geometrically distributed burst of visible
/// operations before control moves, mimicking preemptive quanta. Reads
/// remain uniform over the (restricted) feasible set.
#[derive(Debug)]
pub struct BurstScheduler {
    base_seed: u64,
    rng: StdRng,
    /// Mean burst length in visible operations.
    mean_burst: u32,
    remaining: u32,
}

impl BurstScheduler {
    /// Creates a burst strategy; `mean_burst` is the average number of
    /// visible operations a thread runs before a context switch.
    pub fn new(base_seed: u64, mean_burst: u32) -> Self {
        BurstScheduler {
            base_seed,
            rng: StdRng::seed_from_u64(base_seed),
            mean_burst: mean_burst.max(1),
            remaining: 0,
        }
    }

    fn next_burst(&mut self) -> u32 {
        // Geometric with the configured mean, capped for responsiveness.
        let p = 1.0 / f64::from(self.mean_burst);
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let len = (u.ln() / (1.0 - p).ln()).ceil();
        len.clamp(1.0, f64::from(self.mean_burst) * 8.0) as u32
    }
}

impl Scheduler for BurstScheduler {
    fn next_thread(&mut self, enabled: &[ThreadId], current: ThreadId) -> ThreadId {
        if self.remaining > 0 && enabled.contains(&current) {
            self.remaining -= 1;
            return current;
        }
        self.remaining = self.next_burst();
        enabled[self.rng.gen_range(0..enabled.len())]
    }

    fn choose_read(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    fn begin_execution(&mut self, execution_index: u64) {
        self.rng = StdRng::seed_from_u64(
            self.base_seed
                .wrapping_mul(0xD1B5_4A32_D192_ED03)
                .wrapping_add(execution_index),
        );
        self.remaining = 0;
    }

    fn perturb(&mut self) {
        // A sleep() in the program ends the quantum, letting other
        // threads run — matching how the tsan11 benchmarks induce
        // schedule variability (§8.3).
        self.remaining = 0;
    }
}

/// A PCT-style strategy (Burckhardt et al., "A Randomized Scheduler
/// with Probabilistic Guarantees of Finding Bugs"): threads get random
/// priorities at execution start, the highest-priority enabled thread
/// always runs, and at `depth − 1` random *change points* (counted in
/// visible operations) the running thread's priority drops below all
/// others. For bugs of depth `d`, PCT gives a guaranteed detection
/// probability per run — a useful alternative plugin to uniform random
/// scheduling in C11Tester's pluggable framework (paper §3). Reads-from
/// choices remain uniform over the feasible set.
#[derive(Debug)]
pub struct PctScheduler {
    base_seed: u64,
    rng: StdRng,
    depth: u32,
    expected_ops: u64,
    /// Priority per thread id; higher runs first.
    priorities: Vec<u64>,
    /// Visible-operation indices at which a priority drop fires.
    change_points: Vec<u64>,
    steps: u64,
    /// Change-point demotions count *up* from [`CHANGE_BAND`]: the
    /// `k`-th demoted thread sits above the `k−1`-th (PCT's priority
    /// values `1..d` for change points), but below every high-band
    /// thread.
    next_low: u64,
    /// Yield demotions count *down* from [`CHANGE_BAND`]: the most
    /// recent yielder goes to the very bottom. Counting up here would
    /// livelock spin-wait loops — a spinner re-yielding would forever
    /// outrank the demoted lock holder it is waiting on.
    next_bottom: u64,
    /// A perturb (program yield) demotes `current` at the next
    /// scheduling decision.
    yield_pending: bool,
}

/// Fresh threads draw priorities in `[HIGH_BAND, u64::MAX)`; demoted
/// threads live strictly below `CHANGE_BAND + #change-points`.
const HIGH_BAND: u64 = 1 << 32;
/// Boundary between change-point demotions (counting up from here) and
/// yield demotions (counting down from here).
const CHANGE_BAND: u64 = 1 << 31;

impl PctScheduler {
    /// Creates a PCT strategy with the given bug depth (`d ≥ 1`) and an
    /// estimate of the number of visible operations per execution used
    /// to place change points.
    pub fn new(base_seed: u64, depth: u32, expected_ops: u64) -> Self {
        let mut s = PctScheduler {
            base_seed,
            rng: StdRng::seed_from_u64(base_seed),
            depth: depth.max(1),
            expected_ops: expected_ops.max(1),
            priorities: Vec::new(),
            change_points: Vec::new(),
            steps: 0,
            next_low: CHANGE_BAND,
            next_bottom: CHANGE_BAND,
            yield_pending: false,
        };
        s.reset();
        s
    }

    fn reset(&mut self) {
        self.priorities.clear();
        self.steps = 0;
        self.next_low = CHANGE_BAND;
        self.next_bottom = CHANGE_BAND;
        self.yield_pending = false;
        let expected = self.expected_ops;
        self.change_points = (1..self.depth)
            .map(|_| self.rng.gen_range(0..expected))
            .collect();
        self.change_points.sort_unstable();
    }

    fn priority_of(&mut self, t: ThreadId) -> u64 {
        while self.priorities.len() <= t.index() {
            // New threads draw a fresh high-band priority.
            let p = self.rng.gen_range(HIGH_BAND..u64::MAX);
            self.priorities.push(p);
        }
        self.priorities[t.index()]
    }
}

impl Scheduler for PctScheduler {
    fn next_thread(&mut self, enabled: &[ThreadId], current: ThreadId) -> ThreadId {
        self.steps += 1;
        if self.yield_pending {
            // Program yield: the yielder goes to the very bottom (below
            // all previously demoted threads), so a spin-wait loop can
            // never starve the thread it is waiting on.
            self.yield_pending = false;
            let _ = self.priority_of(current);
            self.next_bottom -= 1;
            self.priorities[current.index()] = self.next_bottom;
        } else if self
            .change_points
            .first()
            .is_some_and(|&cp| self.steps >= cp)
        {
            self.change_points.remove(0);
            // Drop the current thread below every high-band priority.
            let _ = self.priority_of(current);
            self.next_low += 1;
            self.priorities[current.index()] = self.next_low;
        }
        let mut best = enabled[0];
        let mut best_p = 0;
        for &t in enabled {
            let p = self.priority_of(t);
            if p >= best_p {
                best = t;
                best_p = p;
            }
        }
        best
    }

    fn choose_read(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    fn begin_execution(&mut self, execution_index: u64) {
        self.rng = StdRng::seed_from_u64(
            self.base_seed
                .wrapping_mul(0xA076_1D64_78BD_642F)
                .wrapping_add(execution_index),
        );
        self.reset();
    }

    fn perturb(&mut self) {
        // A yield/sleep hint demotes the running thread at the next
        // scheduling decision (to the bottom band — see
        // `yield_pending`).
        self.yield_pending = true;
    }
}

/// A replay/trace scheduler driven by a fixed decision script; used by
/// tests to force a specific interleaving. Thread decisions fall back
/// to `current` (or the first enabled thread) once the script runs dry.
#[derive(Debug, Default)]
pub struct ScriptedScheduler {
    thread_script: std::collections::VecDeque<ThreadId>,
    read_script: std::collections::VecDeque<usize>,
}

impl ScriptedScheduler {
    /// Creates a scripted strategy from explicit decision queues.
    pub fn new<T, R>(threads: T, reads: R) -> Self
    where
        T: IntoIterator<Item = ThreadId>,
        R: IntoIterator<Item = usize>,
    {
        ScriptedScheduler {
            thread_script: threads.into_iter().collect(),
            read_script: reads.into_iter().collect(),
        }
    }
}

impl Scheduler for ScriptedScheduler {
    fn next_thread(&mut self, enabled: &[ThreadId], current: ThreadId) -> ThreadId {
        while let Some(t) = self.thread_script.pop_front() {
            if enabled.contains(&t) {
                return t;
            }
        }
        if enabled.contains(&current) {
            current
        } else {
            enabled[0]
        }
    }

    fn choose_read(&mut self, n: usize) -> usize {
        match self.read_script.pop_front() {
            Some(ix) if ix < n => ix,
            // Script exhausted or out of range: read the newest
            // feasible store (last candidate).
            _ => n - 1,
        }
    }

    fn begin_execution(&mut self, _execution_index: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ix: usize) -> ThreadId {
        ThreadId::from_index(ix)
    }

    #[test]
    fn random_scheduler_replays_with_same_seed() {
        let enabled = [t(0), t(1), t(2)];
        let run = |seed| {
            let mut s = RandomScheduler::new(seed);
            s.begin_execution(3);
            (0..32)
                .map(|_| s.next_thread(&enabled, t(0)).index())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn random_scheduler_covers_all_threads() {
        let enabled = [t(0), t(1), t(2)];
        let mut s = RandomScheduler::new(1);
        s.begin_execution(0);
        let mut seen = [false; 3];
        for _ in 0..256 {
            seen[s.next_thread(&enabled, t(0)).index()] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn burst_scheduler_stays_on_current_within_quantum() {
        let enabled = [t(0), t(1)];
        let mut s = BurstScheduler::new(42, 1000);
        s.begin_execution(0);
        let first = s.next_thread(&enabled, t(0));
        let mut switches = 0;
        let mut cur = first;
        for _ in 0..200 {
            let next = s.next_thread(&enabled, cur);
            if next != cur {
                switches += 1;
            }
            cur = next;
        }
        assert!(
            switches <= 3,
            "with mean burst 1000, 200 steps should rarely switch (got {switches})"
        );
    }

    #[test]
    fn burst_scheduler_perturb_ends_quantum() {
        let enabled = [t(0), t(1), t(2), t(3)];
        let mut s = BurstScheduler::new(9, 1_000_000);
        s.begin_execution(0);
        let _ = s.next_thread(&enabled, t(0));
        let mut switched = false;
        for _ in 0..64 {
            s.perturb();
            if s.next_thread(&enabled, t(0)) != t(0) {
                switched = true;
                break;
            }
        }
        assert!(switched, "perturb must allow switching away");
    }

    #[test]
    fn scripted_scheduler_follows_script_then_falls_back() {
        let mut s = ScriptedScheduler::new([t(1), t(0)], [0]);
        let enabled = [t(0), t(1)];
        assert_eq!(s.next_thread(&enabled, t(0)), t(1));
        assert_eq!(s.next_thread(&enabled, t(1)), t(0));
        // Script dry: stick with current.
        assert_eq!(s.next_thread(&enabled, t(1)), t(1));
        assert_eq!(s.choose_read(3), 0);
        // Read script dry: newest candidate.
        assert_eq!(s.choose_read(3), 2);
    }

    #[test]
    fn scripted_scheduler_skips_disabled_entries() {
        let mut s = ScriptedScheduler::new([t(2), t(1)], []);
        let enabled = [t(0), t(1)];
        // t(2) not enabled: skip to t(1).
        assert_eq!(s.next_thread(&enabled, t(0)), t(1));
    }

    #[test]
    fn pct_scheduler_is_deterministic_per_seed() {
        let enabled = [t(0), t(1), t(2)];
        let run = |seed| {
            let mut s = PctScheduler::new(seed, 3, 100);
            s.begin_execution(0);
            (0..64)
                .map(|_| s.next_thread(&enabled, t(0)).index())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn pct_scheduler_runs_highest_priority_until_change_point() {
        let enabled = [t(0), t(1)];
        let mut s = PctScheduler::new(11, 2, 40);
        s.begin_execution(0);
        // Between change points the same thread keeps running.
        let first = s.next_thread(&enabled, t(0));
        let mut switches = 0;
        let mut cur = first;
        for _ in 0..40 {
            let n = s.next_thread(&enabled, cur);
            if n != cur {
                switches += 1;
                cur = n;
            }
        }
        // Depth 2 → at most 1 scheduled change point (plus none others).
        assert!(switches <= 1, "PCT depth-2 switched {switches} times");
    }

    #[test]
    fn pct_priority_drop_demotes_current() {
        let enabled = [t(0), t(1)];
        let mut s = PctScheduler::new(3, 2, 4);
        s.begin_execution(0);
        let first = s.next_thread(&enabled, t(0));
        // Exhaust steps past the single change point (placed in 0..4).
        let mut last = first;
        for _ in 0..8 {
            last = s.next_thread(&enabled, last);
        }
        // After the change point the other thread must be running.
        assert_ne!(first, last);
    }
}
