//! # c11tester-runtime
//!
//! The controlled-scheduling substrate of **c11tester-rs** (a Rust
//! reproduction of *C11Tester*, ASPLOS 2021): run-token handover
//! between model threads ([`Runtime`], [`Notifier`]) and pluggable
//! testing strategies ([`Scheduler`], [`RandomScheduler`],
//! [`BurstScheduler`], [`ScriptedScheduler`]).
//!
//! The paper controls threads with fibers plus *thread context
//! borrowing* for TLS (§7.3–7.4). The default here is the same design:
//! model threads run as fibers multiplexed on the driver's OS thread
//! (`fiber.rs`), and the run token moves by user-space stack switch.
//! The alternative [`HandoverKind`]s back each model thread with an OS
//! thread and move the token through per-thread mailboxes, spanning
//! the strategy spectrum the paper benchmarks in Figure 14.
//!
//! This crate knows nothing about the memory model: the `c11tester`
//! facade combines it with `c11tester-core` and `c11tester-race`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod executor;
mod fiber;
pub mod handover;
pub mod pool;
pub mod scheduler;

pub use executor::{Aborted, Runtime};
pub use handover::{HandoverKind, Notifier};
pub use pool::ThreadPool;
pub use scheduler::{BurstScheduler, PctScheduler, RandomScheduler, Scheduler, ScriptedScheduler};
