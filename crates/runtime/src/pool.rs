//! A pool of reusable OS worker threads for model executions.
//!
//! The paper amortizes thread setup across explored executions with
//! fibers plus fork-based snapshots (§7.3–§7.4); our stand-in is a
//! [`ThreadPool`] owned by the `Model` that keeps the OS threads
//! backing model threads alive across a shard's executions. Per
//! execution, [`Runtime::spawn`](crate::Runtime::spawn) becomes
//! "dispatch the workload closure to an idle pooled worker" and
//! `join_all` becomes [`ThreadPool::quiesce`] — wait until every
//! dispatched closure has returned its worker to the idle list. The
//! pool grows only when an execution needs more concurrent model
//! threads than any execution before it, so after warmup a campaign
//! performs **zero** thread spawns, thread-name allocations, or join
//! round trips per execution.
//!
//! Run-token handover is unchanged: pooled workers still park in the
//! per-slot [`Notifier`](crate::Notifier) mailboxes of the current
//! execution's `Runtime`, under whatever
//! [`HandoverKind`](crate::HandoverKind) the config selects. The pool
//! replaces only thread *creation and teardown*, which is what makes
//! it behaviorally invisible (canonical campaign output is
//! byte-identical pooled vs fresh).

use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A closure dispatched onto a pooled worker.
pub type Task = Box<dyn FnOnce() + Send>;

enum Job {
    Run(Task),
    Exit,
}

struct WorkerHandle {
    tx: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// State shared between the pool facade and its worker threads.
struct PoolState {
    /// Workers with no task in flight, ready for dispatch.
    idle: Vec<usize>,
    /// Tasks dispatched but not yet returned.
    active: usize,
    /// Panic messages that escaped a task's root `catch_unwind`
    /// (e.g. re-raised non-`Aborted` payloads). Drained by
    /// [`ThreadPool::quiesce`].
    escaped: Vec<String>,
}

struct Shared {
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// A pool of OS worker threads reused across executions.
///
/// Create one per `Model` (or shard worker) with [`ThreadPool::new`],
/// hand it to [`Runtime::with_pool`](crate::Runtime::with_pool) for
/// each execution, and call `Runtime::join_all` (which quiesces the
/// pool) at the end of each. Dropping the pool shuts the workers down
/// and joins them.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<WorkerHandle>>,
    /// OS threads created over the pool's lifetime (growth events).
    spawned: AtomicU64,
    /// Dispatches served by an already-live idle worker (reuse events).
    reused: AtomicU64,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("spawned", &self.spawned.load(Ordering::Relaxed))
            .field("reused", &self.reused.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Creates an empty pool. Workers are spawned lazily on the first
    /// dispatch that finds no idle worker.
    pub fn new() -> Arc<Self> {
        Arc::new(ThreadPool {
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState {
                    idle: Vec::new(),
                    active: 0,
                    escaped: Vec::new(),
                }),
                cv: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
            spawned: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        })
    }

    /// Runs `task` on an idle pooled worker, growing the pool by one
    /// thread if none is idle.
    ///
    /// # Errors
    ///
    /// Returns the OS error message if growing the pool fails (e.g.
    /// transient `EAGAIN` under thread pressure). The pool is left
    /// consistent; the caller should fail only the current execution.
    pub fn dispatch(&self, task: Task) -> Result<(), String> {
        let mut workers = self.workers.lock();
        let reused = {
            let mut st = self.shared.state.lock();
            st.idle.pop().inspect(|_| st.active += 1)
        };
        if let Some(id) = reused {
            self.reused.fetch_add(1, Ordering::Relaxed);
            // The worker holds its receiver until told to exit, so the
            // send can only fail after Drop began — impossible while the
            // caller still holds `&self`.
            workers[id]
                .tx
                .send(Job::Run(task))
                .expect("pooled worker hung up");
            return Ok(());
        }
        // Grow: spawn a new worker and hand it the task directly. The
        // spawn happens *before* `active` is incremented so a failed
        // spawn leaves nothing to quiesce.
        let id = workers.len();
        let (tx, rx) = channel::<Job>();
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("c11tester-pool-{id}"))
            .spawn(move || worker_loop(id, rx, shared))
            .map_err(|e| format!("failed to spawn pooled model thread: {e}"))?;
        self.spawned.fetch_add(1, Ordering::Relaxed);
        self.shared.state.lock().active += 1;
        tx.send(Job::Run(task)).expect("pooled worker hung up");
        workers.push(WorkerHandle {
            tx,
            handle: Some(handle),
        });
        Ok(())
    }

    /// Waits until every dispatched task has completed and its worker
    /// returned to the idle list — the pooled analog of joining each
    /// per-execution thread, without the thread teardown.
    ///
    /// # Errors
    ///
    /// Returns the joined panic messages if any task's panic escaped
    /// its root `catch_unwind` since the previous quiesce (the pooled
    /// analog of `JoinHandle::join` returning `Err`).
    pub fn quiesce(&self) -> Result<(), String> {
        let mut st = self.shared.state.lock();
        while st.active > 0 {
            self.shared.cv.wait(&mut st);
        }
        if st.escaped.is_empty() {
            Ok(())
        } else {
            let msgs: Vec<String> = st.escaped.drain(..).collect();
            Err(msgs.join("; "))
        }
    }

    /// OS threads created over the pool's lifetime. Stable after
    /// warmup: a later execution adds workers only if it needs more
    /// concurrent model threads than any execution before it.
    pub fn workers_spawned(&self) -> u64 {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Dispatches served by reusing an already-live idle worker (the
    /// "recycled" counter to [`ThreadPool::workers_spawned`]'s
    /// "fresh").
    pub fn dispatches_reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        let mut workers = self.workers.lock();
        for w in workers.iter() {
            let _ = w.tx.send(Job::Exit);
        }
        for w in workers.iter_mut() {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(id: usize, rx: Receiver<Job>, shared: Arc<Shared>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Run(task) => {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                let mut st = shared.state.lock();
                if let Err(payload) = outcome {
                    st.escaped.push(panic_message(payload.as_ref()));
                }
                // Idle-before-decrement: once `active` hits zero every
                // worker is already back on the idle list, so a
                // quiescing dispatcher never observes "no task running
                // yet nothing idle" (which would force a spurious
                // growth spawn after warmup).
                st.idle.push(id);
                st.active -= 1;
                drop(st);
                shared.cv.notify_all();
            }
            Job::Exit => return,
        }
    }
}

/// Renders a panic payload for diagnostics.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn dispatch_runs_tasks_and_quiesce_waits() {
        let pool = ThreadPool::new();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let c = Arc::clone(&counter);
            pool.dispatch(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }))
            .expect("dispatch");
        }
        pool.quiesce().expect("no escaped panics");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn pool_reuses_workers_across_rounds() {
        let pool = ThreadPool::new();
        for _round in 0..5 {
            for _ in 0..3 {
                pool.dispatch(Box::new(|| {})).expect("dispatch");
            }
            pool.quiesce().expect("quiesce");
        }
        // Growth happened only while no worker was idle; after the
        // first rounds warmed the pool, later rounds reuse. 15 total
        // dispatches, at most a handful of spawns.
        let spawned = pool.workers_spawned();
        let reused = pool.dispatches_reused();
        assert_eq!(spawned + reused, 15);
        assert!(
            spawned <= 3,
            "sequential rounds of 3 need at most 3 workers, spawned {spawned}"
        );
    }

    #[test]
    fn quiesce_surfaces_escaped_panics_then_recovers() {
        let pool = ThreadPool::new();
        pool.dispatch(Box::new(|| panic!("task exploded")))
            .expect("dispatch");
        let err = pool.quiesce().expect_err("escaped panic must surface");
        assert!(err.contains("task exploded"), "got: {err}");
        // The worker survived and the error was drained: the pool is
        // reusable and the next quiesce is clean.
        pool.dispatch(Box::new(|| {})).expect("dispatch");
        pool.quiesce().expect("drained");
    }
}
