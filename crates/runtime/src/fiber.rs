//! Fiber-backed run-token handover (paper §7.3–§7.4).
//!
//! The paper's fastest handover strategy implements application threads
//! as *fibers*: user-space contexts that switch with a register swap
//! instead of a futex round trip through the kernel (Figure 14 reports
//! 0.34µs per swapcontext switch vs 1.32µs for futexes on one core).
//! This module is the Rust equivalent: every model thread of an
//! execution runs on the **driver's OS thread**, each on its own
//! heap-allocated stack, and the run token moves by swapping stack
//! pointers and callee-saved registers — no syscall, no kernel
//! scheduler, no cross-core traffic.
//!
//! Where the paper borrows a kernel thread's context for TLS (§7.4),
//! we need the reverse adjustment: because every fiber shares the
//! driver's OS thread, thread-locals are shared too, so the facade
//! derives the current model-thread id from [`Fibers::current`]
//! instead of a per-OS-thread binding.
//!
//! # Cooperative protocol
//!
//! The executor's `wake(next); park(self)` pairs become one atomic
//! handover: `wake` records the chosen successor, and the *next
//! suspension point* of the caller — a park or the end of its body —
//! performs the actual context switch. Strict run-token passing (at
//! most one wake is ever outstanding) is what makes this exact; the
//! module panics loudly on protocol violations instead of deadlocking.
//!
//! # Safety model
//!
//! All switching happens on the driver OS thread that owns the
//! execution; the interior mutex only serializes bookkeeping. A panic
//! never unwinds across a switch frame: fiber bodies are caught at the
//! fiber's root, and the cooperative `Aborted` unwind is contained to
//! the fiber's own stack. Stacks are fixed-size (1 MiB) without guard
//! pages — the same trade the paper's tool makes — and are recycled
//! through a per-driver-thread cache so steady-state executions
//! allocate nothing.

#![allow(unsafe_code)]

use crate::pool::panic_message;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Whether fiber handover is available on this target. The context
/// switch is x86_64 SysV assembly; other targets fall back to the
/// futex strategy at `Runtime` construction.
pub(crate) const fn supported() -> bool {
    cfg!(all(target_arch = "x86_64", unix))
}

/// Fixed fiber stack size. Model-thread bodies are ordinary Rust
/// closures (no guard page — overflow is undefined, as in the paper's
/// fiber runtime); 1 MiB is an order of magnitude above what the
/// deepest workload uses, debug builds included.
const STACK_SIZE: usize = 1 << 20;

/// Per-driver-thread cache of retired fiber stacks. Executions are
/// driven to completion on one OS thread, so a thread-local free list
/// makes steady-state stack allocation free without any locking.
const STACK_CACHE_MAX: usize = 32;

thread_local! {
    static STACK_CACHE: RefCell<Vec<RawStack>> = const { RefCell::new(Vec::new()) };
}

struct RawStack {
    ptr: std::ptr::NonNull<u8>,
}

impl RawStack {
    fn layout() -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(STACK_SIZE, 16).expect("fiber stack layout")
    }

    fn obtain() -> RawStack {
        STACK_CACHE
            .with(|c| c.borrow_mut().pop())
            .unwrap_or_else(|| {
                let ptr = unsafe { std::alloc::alloc(RawStack::layout()) };
                RawStack {
                    ptr: std::ptr::NonNull::new(ptr).expect("fiber stack allocation failed"),
                }
            })
    }

    fn recycle(self) {
        STACK_CACHE.with(|c| {
            let mut cache = c.borrow_mut();
            if cache.len() < STACK_CACHE_MAX {
                cache.push(self);
            }
            // Else: drop, deallocating.
        });
    }
}

impl Drop for RawStack {
    fn drop(&mut self) {
        unsafe { std::alloc::dealloc(self.ptr.as_ptr(), RawStack::layout()) };
    }
}

/// Lifecycle of one fiber slot.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Status {
    /// Slot allocated; no body yet, or body stored but never started.
    New,
    /// Currently executing (exactly one slot per driver at any time).
    Running,
    /// Started and parked; `sp` holds its suspended context.
    Suspended,
    /// Body returned (or unwound); stack is reclaimable.
    Finished,
}

/// One model thread's fiber state. Boxed so its address — which the
/// context-switch assembly writes through — survives slot-vector
/// growth.
struct FiberSlot {
    /// Saved stack pointer while `Suspended` (written by the switch).
    sp: *mut u8,
    /// The fiber's stack, `None` for the driver's native context and
    /// for fibers not yet started.
    stack: Option<RawStack>,
    status: Status,
    /// Body stored at spawn, taken by the fiber entry on first switch-in.
    body: Option<Box<dyn FnOnce() + Send>>,
    /// Back-pointers for the fiber entry (stable: they live inside the
    /// `Runtime`'s `Arc` allocation, which outlives every fiber).
    fibers: *const Fibers,
    poisoned: *const AtomicBool,
    ix: usize,
}

impl FiberSlot {
    fn new() -> Box<FiberSlot> {
        Box::new(FiberSlot {
            sp: std::ptr::null_mut(),
            stack: None,
            status: Status::New,
            body: None,
            fibers: std::ptr::null(),
            poisoned: std::ptr::null(),
            ix: 0,
        })
    }
}

struct FiberState {
    /// Boxed on purpose (not `clippy::vec_box` noise): suspended stacks
    /// hold raw pointers into their `FiberSlot`, so slot addresses must
    /// survive `slots` reallocating as the execution forks threads.
    #[allow(clippy::vec_box)]
    slots: Vec<Box<FiberSlot>>,
    /// The successor chosen by the last `wake`, consumed by the next
    /// suspension point. Strict token passing keeps this at most one.
    pending: Option<usize>,
    /// Panic messages that escaped a fiber body's root `catch_unwind`
    /// (anything but the cooperative `Aborted` unwind).
    escaped: Vec<String>,
}

/// The fiber group backing one execution's `Runtime` in
/// [`HandoverKind::Fiber`](crate::HandoverKind::Fiber) mode.
pub(crate) struct Fibers {
    state: Mutex<FiberState>,
    /// Slot currently executing — read on every model operation to
    /// derive the current thread id, so it lives outside the mutex.
    current: AtomicUsize,
    /// The slot bound to the driver's native context.
    driver: AtomicUsize,
}

// SAFETY: the raw pointers inside `FiberState` reference the owning
// `Runtime`'s `Arc` allocation and heap boxes that live until the
// `Fibers` is dropped. All context switching is confined to the one OS
// thread driving the execution; the mutex serializes bookkeeping for
// any cross-thread observers.
unsafe impl Send for Fibers {}
unsafe impl Sync for Fibers {}

impl std::fmt::Debug for Fibers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fibers")
            .field("current", &self.current.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Fibers {
    pub(crate) fn new() -> Fibers {
        assert!(supported(), "fiber handover unsupported on this target");
        Fibers {
            state: Mutex::new(FiberState {
                slots: Vec::new(),
                pending: None,
                escaped: Vec::new(),
            }),
            current: AtomicUsize::new(0),
            driver: AtomicUsize::new(0),
        }
    }

    /// Allocates a fiber slot; indices match the engine's thread ids.
    pub(crate) fn add_slot(&self) -> usize {
        let mut st = self.state.lock();
        st.slots.push(FiberSlot::new());
        st.slots.len() - 1
    }

    /// Binds slot `ix` to the calling (driver) thread's native context.
    pub(crate) fn bind_driver(&self, ix: usize) {
        let mut st = self.state.lock();
        st.slots[ix].status = Status::Running;
        self.driver.store(ix, Ordering::Relaxed);
        self.current.store(ix, Ordering::Relaxed);
    }

    /// The slot currently executing on the driver thread.
    pub(crate) fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// Stores `body` for slot `ix`. The fiber starts lazily: its stack
    /// is built when the run token first reaches it, so threads the
    /// schedule never reaches cost nothing and never run.
    pub(crate) fn spawn(&self, ix: usize, body: Box<dyn FnOnce() + Send>, poisoned: &AtomicBool) {
        let mut st = self.state.lock();
        let slot = &mut st.slots[ix];
        assert_eq!(slot.status, Status::New, "fiber slot {ix} spawned twice");
        slot.body = Some(body);
        slot.fibers = self;
        slot.poisoned = poisoned;
        slot.ix = ix;
    }

    /// Records the successor chosen by the scheduler. The switch
    /// happens at the caller's next suspension point.
    pub(crate) fn wake(&self, ix: usize) {
        let mut st = self.state.lock();
        assert!(
            st.pending.replace(ix).is_none(),
            "fiber handover: second wake({ix}) before the token holder suspended"
        );
    }

    /// Suspends the calling fiber (slot `ix`) and switches to the
    /// pending successor; returns when the run token comes back.
    pub(crate) fn park(&self, ix: usize) {
        let (save, restore) = {
            let mut st = self.state.lock();
            let target = st
                .pending
                .take()
                .expect("fiber handover: park with no pending wake");
            if target == ix {
                return; // Token handed straight back.
            }
            debug_assert_eq!(st.slots[ix].status, Status::Running);
            st.slots[ix].status = Status::Suspended;
            let save: *mut *mut u8 = &mut st.slots[ix].sp;
            let restore = self.prepare(&mut st, target);
            (save, restore)
        };
        unsafe { fiber_switch(save, restore) };
        // Resumed: whoever switched to us already marked us Running and
        // set `current`.
    }

    /// Terminates the calling fiber after its body returned; switches
    /// to the pending successor, or to the driver if none (the abort
    /// path). Never returns.
    fn exit(&self, ix: usize) -> ! {
        let (save, restore) = {
            let mut st = self.state.lock();
            st.slots[ix].status = Status::Finished;
            let target = st
                .pending
                .take()
                .unwrap_or_else(|| self.driver.load(Ordering::Relaxed));
            debug_assert_ne!(target, ix, "finished fiber woke itself");
            // The save location is dead — nothing resumes a finished
            // fiber — but the switch needs somewhere to write.
            let save: *mut *mut u8 = &mut st.slots[ix].sp;
            let restore = self.prepare(&mut st, target);
            (save, restore)
        };
        unsafe { fiber_switch(save, restore) };
        unreachable!("finished fiber {ix} was resumed");
    }

    /// Marks `target` Running (building its initial context if it was
    /// never started) and returns the location of its saved stack
    /// pointer. Caller still holds the state lock.
    fn prepare(&self, st: &mut FiberState, target: usize) -> *const *mut u8 {
        let slot = &mut st.slots[target];
        match slot.status {
            Status::Suspended => {}
            Status::New => {
                assert!(
                    slot.body.is_some(),
                    "fiber handover: woke slot {target} before it was spawned"
                );
                let stack = RawStack::obtain();
                slot.sp = unsafe { build_initial_sp(&stack, &mut **slot) };
                slot.stack = Some(stack);
            }
            Status::Running | Status::Finished => {
                panic!(
                    "fiber handover: switching to slot {target} in state {:?}",
                    slot.status
                );
            }
        }
        slot.status = Status::Running;
        self.current.store(target, Ordering::Relaxed);
        &st.slots[target].sp
    }

    /// Driver-side switch into `target`, returning when control comes
    /// back to the driver's native context (used by teardown).
    fn switch_from_driver(&self, target: usize) {
        let driver = self.driver.load(Ordering::Relaxed);
        let (save, restore) = {
            let mut st = self.state.lock();
            debug_assert_eq!(st.slots[driver].status, Status::Running);
            st.slots[driver].status = Status::Suspended;
            let save: *mut *mut u8 = &mut st.slots[driver].sp;
            let restore = self.prepare(&mut st, target);
            (save, restore)
        };
        unsafe { fiber_switch(save, restore) };
    }

    /// Teardown (the fiber analog of joining every model thread):
    /// consumes any granted-but-unconsumed token, unwinds suspended
    /// fibers when the execution was poisoned, drops never-started
    /// bodies, and recycles stacks.
    ///
    /// # Errors
    ///
    /// Returns the collected panic messages of fiber bodies whose
    /// panic escaped their root `catch_unwind`.
    pub(crate) fn finish(&self, poisoned: bool) -> Result<(), String> {
        // A wake whose grantor returned to the driver without parking
        // (e.g. the driver was the last to run) must still be honored.
        loop {
            let target = { self.state.lock().pending.take() };
            match target {
                Some(t) => self.switch_from_driver(t),
                None => break,
            }
        }
        if poisoned {
            // Resume each suspended fiber so it observes the poison,
            // unwinds (running Drop code), and exits back here.
            loop {
                let target = {
                    let st = self.state.lock();
                    st.slots.iter().position(|s| s.status == Status::Suspended)
                };
                match target {
                    Some(t) => self.switch_from_driver(t),
                    None => break,
                }
            }
        }
        let mut st = self.state.lock();
        let stuck = st.slots.iter().position(|s| s.status == Status::Suspended);
        assert!(
            stuck.is_none(),
            "fiber handover: slot {} still suspended at teardown of a completed execution",
            stuck.unwrap_or(0)
        );
        for slot in &mut st.slots {
            slot.body = None; // Never-started threads must not run.
            if let Some(stack) = slot.stack.take() {
                stack.recycle();
            }
        }
        if st.escaped.is_empty() {
            Ok(())
        } else {
            let msgs: Vec<String> = st.escaped.drain(..).collect();
            Err(msgs.join("; "))
        }
    }
}

/// Root of every fiber: runs the body under `catch_unwind` so no panic
/// can unwind across the context-switch frame, then terminates the
/// fiber. A fiber first scheduled after the execution was poisoned
/// never runs its body (matching the OS-thread wrapper, whose first
/// park reports the abort before the body).
extern "C" fn fiber_entry(slot: *mut FiberSlot) -> ! {
    // SAFETY: `slot` is the boxed slot this fiber was built from; its
    // body/ix/back-pointers are only touched by the running fiber.
    let (fibers, poisoned, ix, body) = unsafe {
        let s = &mut *slot;
        (
            &*s.fibers,
            &*s.poisoned,
            s.ix,
            s.body.take().expect("fiber started without a body"),
        )
    };
    if !poisoned.load(Ordering::Acquire) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
            if payload.downcast_ref::<crate::Aborted>().is_none() {
                // Not the cooperative abort: surface it from join_all
                // (same contract as the OS-thread runtime).
                fibers
                    .state
                    .lock()
                    .escaped
                    .push(panic_message(payload.as_ref()));
            }
        }
    }
    fibers.exit(ix)
}

/// Builds the initial stack image for a fiber so that the first switch
/// into it lands in [`fiber_trampoline`] with the slot pointer and
/// entry address in callee-saved registers. Returns the initial stack
/// pointer, matching the save/restore layout of [`fiber_switch`].
///
/// Image (ascending addresses from the returned `sp`):
/// `[mxcsr|fcw] r15 r14 r13=entry r12=slot rbx rbp ret=trampoline`.
#[cfg(all(target_arch = "x86_64", unix))]
unsafe fn build_initial_sp(stack: &RawStack, slot: *mut FiberSlot) -> *mut u8 {
    let top = (stack.ptr.as_ptr() as usize + STACK_SIZE) & !15;
    let sp = (top - 64) as *mut u64;
    // x87/SSE control words: the Rust/SysV defaults (round-to-nearest,
    // all exceptions masked).
    unsafe {
        sp.write(0x1F80 | (0x037F_u64 << 32));
        sp.add(1).write(0); // r15
        sp.add(2).write(0); // r14
        sp.add(3).write(fiber_entry as *const () as usize as u64); // r13
        sp.add(4).write(slot as usize as u64); // r12
        sp.add(5).write(0); // rbx
        sp.add(6).write(0); // rbp
        sp.add(7)
            .write(fiber_trampoline as *const () as usize as u64); // return address
    }
    sp as *mut u8
}

/// Saves the caller's callee-saved context on its stack, writes the
/// resulting stack pointer to `*save`, switches to the stack pointer
/// read from `*restore`, and resumes that context. SysV x86_64:
/// callee-saved registers plus the SSE/x87 control words.
#[cfg(all(target_arch = "x86_64", unix))]
#[unsafe(naked)]
unsafe extern "C" fn fiber_switch(save: *mut *mut u8, restore: *const *mut u8) {
    core::arch::naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "sub rsp, 8",
        "stmxcsr [rsp]",
        "fnstcw [rsp + 4]",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "ldmxcsr [rsp]",
        "fldcw [rsp + 4]",
        "add rsp, 8",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

/// First frame of every fiber: entered by `fiber_switch`'s `ret` with
/// a 16-aligned stack, forwards the slot pointer (r12) to the entry
/// function (r13). The entry never returns.
#[cfg(all(target_arch = "x86_64", unix))]
#[unsafe(naked)]
unsafe extern "C" fn fiber_trampoline() {
    core::arch::naked_asm!("mov rdi, r12", "call r13", "ud2")
}

#[cfg(not(all(target_arch = "x86_64", unix)))]
unsafe fn build_initial_sp(_stack: &RawStack, _slot: *mut FiberSlot) -> *mut u8 {
    unreachable!("fiber handover unsupported on this target")
}

#[cfg(not(all(target_arch = "x86_64", unix)))]
unsafe fn fiber_switch(_save: *mut *mut u8, _restore: *const *mut u8) {
    unreachable!("fiber handover unsupported on this target")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Mirrors the executor's usage closely enough for mechanism tests:
    /// driver on slot 0, cooperative wake/park between fibers.
    struct Harness {
        fibers: Arc<Fibers>,
        poisoned: Arc<AtomicBool>,
    }

    impl Harness {
        fn new() -> Harness {
            let h = Harness {
                fibers: Arc::new(Fibers::new()),
                poisoned: Arc::new(AtomicBool::new(false)),
            };
            let driver = h.fibers.add_slot();
            h.fibers.bind_driver(driver);
            h
        }

        fn spawn(&self, body: impl FnOnce() + Send + 'static) -> usize {
            let ix = self.fibers.add_slot();
            self.fibers.spawn(ix, Box::new(body), &self.poisoned);
            ix
        }
    }

    #[test]
    fn round_trip_through_one_fiber() {
        let h = Harness::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let fibers = Arc::clone(&h.fibers);
        let ix = h.spawn(move || {
            log2.lock().push("fiber");
            fibers.wake(0);
            // Body ends: exit consumes the pending wake... no — the
            // wake targets the driver; exit finds it pending and
            // switches there.
        });
        h.fibers.wake(ix);
        h.fibers.park(0);
        log.lock().push("driver");
        h.fibers.finish(false).expect("no escaped panics");
        assert_eq!(*log.lock(), vec!["fiber", "driver"]);
    }

    #[test]
    fn token_ring_visits_fibers_in_order() {
        let h = Harness::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut ixs = Vec::new();
        for k in 0..3usize {
            let log2 = Arc::clone(&log);
            let fibers = Arc::clone(&h.fibers);
            // Ring: 1 -> 2 -> 3 -> driver(0), five rounds.
            let ix = h.spawn(move || {
                for round in 0..5 {
                    log2.lock().push((k + 1, round));
                    let next = if k == 2 { 0 } else { k + 2 };
                    fibers.wake(next);
                    if round < 4 {
                        fibers.park(k + 1);
                    }
                }
            });
            ixs.push(ix);
        }
        for _ in 0..5 {
            h.fibers.wake(ixs[0]);
            h.fibers.park(0);
        }
        h.fibers.finish(false).expect("no escaped panics");
        let log = log.lock();
        for round in 0..5 {
            let entries: Vec<usize> = log
                .iter()
                .filter(|(_, r)| *r == round)
                .map(|(ix, _)| *ix)
                .collect();
            assert_eq!(entries, vec![1, 2, 3], "round {round}");
        }
    }

    #[test]
    fn poisoned_execution_unwinds_suspended_fibers() {
        let h = Harness::new();
        let unwound = Arc::new(AtomicBool::new(false));
        let u2 = Arc::clone(&unwound);
        let fibers = Arc::clone(&h.fibers);
        let poisoned = Arc::clone(&h.poisoned);
        struct SetOnDrop(Arc<AtomicBool>);
        impl Drop for SetOnDrop {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Release);
            }
        }
        let ix = h.spawn(move || {
            let _witness = SetOnDrop(u2);
            fibers.wake(0);
            fibers.park(1);
            // Resumed by teardown: the poison is visible; unwind like
            // the model runtime does.
            if poisoned.load(Ordering::Acquire) {
                std::panic::panic_any(crate::Aborted);
            }
        });
        h.fibers.wake(ix);
        h.fibers.park(0);
        h.poisoned.store(true, Ordering::Release);
        h.fibers.finish(true).expect("Aborted unwind is swallowed");
        assert!(unwound.load(Ordering::Acquire), "Drop code must run");
    }

    #[test]
    fn never_started_fiber_does_not_run_on_poison() {
        let h = Harness::new();
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        h.spawn(move || r2.store(true, Ordering::Release));
        h.poisoned.store(true, Ordering::Release);
        h.fibers.finish(true).expect("clean teardown");
        assert!(!ran.load(Ordering::Acquire), "body must not run");
    }

    #[test]
    fn escaped_panics_surface_from_finish() {
        let h = Harness::new();
        let ix = h.spawn(|| panic!("fiber body exploded"));
        // Token granted but the driver never parks: teardown honors it.
        h.fibers.wake(ix);
        let err = h.fibers.finish(false).expect_err("panic must surface");
        assert!(err.contains("fiber body exploded"), "got: {err}");
    }

    #[test]
    fn stacks_are_recycled_across_groups() {
        // Two sequential harnesses on this thread: the second must be
        // able to reuse the first's stack (observable only as "does
        // not crash and completes" — the cache is internal).
        for _ in 0..2 {
            let h = Harness::new();
            let fibers = Arc::clone(&h.fibers);
            let ix = h.spawn(move || {
                fibers.wake(0);
            });
            h.fibers.wake(ix);
            h.fibers.park(0);
            h.fibers.finish(false).expect("clean");
        }
    }
}
