//! Run-token handover primitives (paper §7.3, Figure 14).
//!
//! A controlled-scheduling tool runs exactly one application thread at
//! a time; the cost of *handing the run token* from one thread to the
//! next is the tool's core overhead. The paper measures eight
//! strategies (condition variables, futexes, spinning, spinning with
//! yield, swapcontext/setjmp fibers ± TLS migration) and picks fibers.
//! We reproduce that spectrum, fibers included:
//!
//! * [`HandoverKind::Fiber`] — user-space stack switching on the
//!   driver's OS thread (the paper's winning strategy, §7.3; see
//!   `fiber.rs`). The default on supported targets;
//! * [`HandoverKind::Park`] — futex-backed `thread::park`/`unpark`
//!   (the paper's futex row; the fastest strategy backed by real OS
//!   threads, and the fallback default);
//! * [`HandoverKind::Condvar`] — mutex + condition variable (the
//!   paper's slowest practical strategy; used by the tsan11rec
//!   emulation);
//! * [`HandoverKind::Spin`] — pure spinning (fast with a core per
//!   thread, catastrophic when cores are shared);
//! * [`HandoverKind::SpinYield`] — spinning with `yield_now`;
//! * [`HandoverKind::Channel`] — a rendezvous over `mpsc` channels.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex as StdMutex;
use std::thread::Thread;

/// Selects the run-token handover implementation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum HandoverKind {
    /// Futex-backed park/unpark (the OS-thread default).
    #[default]
    Park,
    /// Mutex + condition variable.
    Condvar,
    /// Busy spinning.
    Spin,
    /// Spinning with `std::thread::yield_now`.
    SpinYield,
    /// `mpsc` channel rendezvous.
    Channel,
    /// User-space fiber stack switching on the driver thread (§7.3,
    /// the paper's choice). Behaviorally identical to the OS-thread
    /// strategies — canonical output is byte-identical — but a switch
    /// is a register swap instead of a futex round trip. Falls back to
    /// [`HandoverKind::Park`] on unsupported targets.
    Fiber,
}

impl HandoverKind {
    /// All kinds, in Figure-14 presentation order.
    pub fn all() -> [HandoverKind; 6] {
        [
            HandoverKind::Condvar,
            HandoverKind::Park,
            HandoverKind::Spin,
            HandoverKind::SpinYield,
            HandoverKind::Channel,
            HandoverKind::Fiber,
        ]
    }

    /// The fastest handover available on this target: fibers where the
    /// user-space context switch is implemented, futex park/unpark
    /// elsewhere. What `Config::new` selects.
    pub fn default_fast() -> HandoverKind {
        if crate::fiber::supported() {
            HandoverKind::Fiber
        } else {
            HandoverKind::Park
        }
    }

    /// Name used in the Figure-14 table output.
    pub fn name(self) -> &'static str {
        match self {
            HandoverKind::Park => "futex park/unpark",
            HandoverKind::Condvar => "condition variable",
            HandoverKind::Spin => "spinning",
            HandoverKind::SpinYield => "spinning w/ yield",
            HandoverKind::Channel => "channel rendezvous",
            HandoverKind::Fiber => "fibers (stack switch)",
        }
    }
}

enum Impl {
    Park {
        token: AtomicBool,
        handle: StdMutex<Option<Thread>>,
    },
    Condvar {
        token: parking_lot::Mutex<bool>,
        cond: parking_lot::Condvar,
    },
    Spin {
        token: AtomicBool,
        yield_between: bool,
    },
    Channel {
        tx: Sender<()>,
        rx: StdMutex<Receiver<()>>,
    },
}

/// One thread's wakeup mailbox. `notify` may race with (or precede)
/// `wait`; the token semantics guarantee no lost wakeups either way.
pub struct Notifier {
    imp: Impl,
}

impl std::fmt::Debug for Notifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.imp {
            Impl::Park { .. } => "Park",
            Impl::Condvar { .. } => "Condvar",
            Impl::Spin {
                yield_between: false,
                ..
            } => "Spin",
            Impl::Spin {
                yield_between: true,
                ..
            } => "SpinYield",
            Impl::Channel { .. } => "Channel",
        };
        write!(f, "Notifier({kind})")
    }
}

impl Notifier {
    /// Creates a notifier of the given kind. The fiber strategy has no
    /// mailbox (handover is a direct stack switch, see `fiber.rs`), so
    /// kind-generic code gets a futex notifier for it.
    pub fn new(kind: HandoverKind) -> Self {
        let imp = match kind {
            HandoverKind::Park | HandoverKind::Fiber => Impl::Park {
                token: AtomicBool::new(false),
                handle: StdMutex::new(None),
            },
            HandoverKind::Condvar => Impl::Condvar {
                token: parking_lot::Mutex::new(false),
                cond: parking_lot::Condvar::new(),
            },
            HandoverKind::Spin => Impl::Spin {
                token: AtomicBool::new(false),
                yield_between: false,
            },
            HandoverKind::SpinYield => Impl::Spin {
                token: AtomicBool::new(false),
                yield_between: true,
            },
            HandoverKind::Channel => {
                let (tx, rx) = std::sync::mpsc::channel();
                Impl::Channel {
                    tx,
                    rx: StdMutex::new(rx),
                }
            }
        };
        Notifier { imp }
    }

    /// Binds the owning OS thread (needed by the park strategy; no-op
    /// for the others). Call from the thread that will `wait`.
    pub fn bind_current(&self) {
        if let Impl::Park { handle, .. } = &self.imp {
            *handle.lock().expect("handle mutex poisoned") = Some(std::thread::current());
        }
    }

    /// Blocks until a token is delivered, consuming it.
    pub fn wait(&self) {
        match &self.imp {
            Impl::Park { token, .. } => loop {
                if token.swap(false, Ordering::Acquire) {
                    return;
                }
                std::thread::park();
            },
            Impl::Condvar { token, cond } => {
                let mut guard = token.lock();
                while !*guard {
                    cond.wait(&mut guard);
                }
                *guard = false;
            }
            Impl::Spin {
                token,
                yield_between,
            } => loop {
                if token.swap(false, Ordering::Acquire) {
                    return;
                }
                if *yield_between {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            },
            Impl::Channel { rx, .. } => {
                rx.lock()
                    .expect("receiver mutex poisoned")
                    .recv()
                    .expect("notifier channel closed while waiting");
            }
        }
    }

    /// Delivers a token, waking the owner if it is waiting.
    pub fn notify(&self) {
        match &self.imp {
            Impl::Park { token, handle } => {
                token.store(true, Ordering::Release);
                if let Some(t) = handle.lock().expect("handle mutex poisoned").as_ref() {
                    t.unpark();
                }
            }
            Impl::Condvar { token, cond } => {
                *token.lock() = true;
                cond.notify_one();
            }
            Impl::Spin { token, .. } => {
                token.store(true, Ordering::Release);
            }
            Impl::Channel { tx, .. } => {
                // Ignore send errors: the owner may already have exited
                // during an abort.
                let _ = tx.send(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn ping_pong(kind: HandoverKind) {
        let a = Arc::new(Notifier::new(kind));
        let b = Arc::new(Notifier::new(kind));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let child = std::thread::spawn(move || {
            b2.bind_current();
            for _ in 0..100 {
                b2.wait();
                a2.notify();
            }
        });
        a.bind_current();
        for _ in 0..100 {
            b.notify();
            a.wait();
        }
        child.join().expect("child thread panicked");
    }

    #[test]
    fn park_ping_pong() {
        ping_pong(HandoverKind::Park);
    }

    #[test]
    fn condvar_ping_pong() {
        ping_pong(HandoverKind::Condvar);
    }

    #[test]
    fn spin_yield_ping_pong() {
        ping_pong(HandoverKind::SpinYield);
    }

    #[test]
    fn channel_ping_pong() {
        ping_pong(HandoverKind::Channel);
    }

    #[test]
    fn notify_before_wait_is_not_lost() {
        for kind in HandoverKind::all() {
            let n = Notifier::new(kind);
            n.bind_current();
            n.notify();
            // Must return immediately instead of blocking.
            n.wait();
        }
    }

    #[test]
    fn notify_wakes_a_later_waiter() {
        // Waiter binds and sleeps before the notify arrives.
        let n = Arc::new(Notifier::new(HandoverKind::Park));
        let n2 = Arc::clone(&n);
        let waiter = std::thread::spawn(move || {
            n2.bind_current();
            n2.wait();
        });
        std::thread::sleep(Duration::from_millis(20));
        n.notify();
        waiter.join().expect("waiter panicked");
    }
}
