//! Litmus conformance: the classic C11 litmus tests, enumerated by the
//! small-scope enumerator, cross-checked against the axiom oracle and
//! against the model engine, and pinned to a checked-in golden table.
//!
//! Three layers of checking per litmus program:
//!
//! 1. **semantic** — the theoretically forbidden outcome is absent
//!    from the enumerated set and the characteristic allowed outcomes
//!    are present (independent of the golden file, so a wrong golden
//!    cannot mask a wrong enumerator);
//! 2. **engine** — a model sweep of the program produces only traces
//!    the oracle accepts, with outcomes inside the enumerated set
//!    (engine ⊆ axioms);
//! 3. **golden** — the full outcome sets match
//!    `tests/golden_litmus.txt` byte-for-byte, so any drift in either
//!    the enumerator or the oracle shows up as a reviewable diff.
//!
//! Run with `UPDATE_LITMUS_GOLDEN=1` to print the current table when
//! it needs regenerating (the test still fails; paste the output).

use c11tester::{Config, MemOrder};
use c11tester_genprog::{check_trace, enumerate_outcomes, outcome, sweep, Op, Program};

const GOLDEN: &str = include_str!("golden_litmus.txt");

fn load(loc: usize, ord: MemOrder) -> Op {
    Op::Load { loc, ord }
}

fn store(loc: usize, ord: MemOrder, value: u64) -> Op {
    Op::Store { loc, ord, value }
}

fn fence(ord: MemOrder) -> Op {
    Op::Fence { ord }
}

fn program(locs: usize, threads: Vec<Vec<Op>>) -> Program {
    Program {
        pseed: 0,
        locs,
        mutexes: 0,
        threads,
    }
}

/// One litmus entry: a name, the program, one forbidden outcome, and
/// a few characteristic allowed outcomes.
struct Litmus {
    name: &'static str,
    program: Program,
    forbidden: Vec<Vec<Vec<u64>>>,
    allowed: Vec<Vec<Vec<u64>>>,
}

fn table() -> Vec<Litmus> {
    use MemOrder::*;
    vec![
        // Store buffering: the outcome both loads read 0 is the SC
        // litmus — forbidden with seq_cst, allowed relaxed.
        Litmus {
            name: "sb-seqcst",
            program: program(
                2,
                vec![
                    vec![store(0, SeqCst, 1), load(1, SeqCst)],
                    vec![store(1, SeqCst, 2), load(0, SeqCst)],
                ],
            ),
            forbidden: vec![vec![vec![0], vec![0]]],
            allowed: vec![vec![vec![2], vec![1]], vec![vec![0], vec![1]]],
        },
        Litmus {
            name: "sb-relaxed",
            program: program(
                2,
                vec![
                    vec![store(0, Relaxed, 1), load(1, Relaxed)],
                    vec![store(1, Relaxed, 2), load(0, Relaxed)],
                ],
            ),
            forbidden: vec![],
            allowed: vec![vec![vec![0], vec![0]], vec![vec![2], vec![1]]],
        },
        // Store buffering with seq_cst fences between relaxed accesses:
        // the fences restore the SC guarantee (§29.3p4–6).
        Litmus {
            name: "sb-fences",
            program: program(
                2,
                vec![
                    vec![store(0, Relaxed, 1), fence(SeqCst), load(1, Relaxed)],
                    vec![store(1, Relaxed, 2), fence(SeqCst), load(0, Relaxed)],
                ],
            ),
            forbidden: vec![vec![vec![0], vec![0]]],
            allowed: vec![vec![vec![2], vec![1]]],
        },
        // Message passing: the stale read behind an acquire-observed
        // release flag is forbidden.
        Litmus {
            name: "mp-rel-acq",
            program: program(
                2,
                vec![
                    vec![store(0, Relaxed, 1), store(1, Release, 2)],
                    vec![load(1, Acquire), load(0, Relaxed)],
                ],
            ),
            forbidden: vec![vec![vec![], vec![2, 0]]],
            allowed: vec![vec![vec![], vec![2, 1]], vec![vec![], vec![0, 0]]],
        },
        Litmus {
            name: "mp-relaxed",
            program: program(
                2,
                vec![
                    vec![store(0, Relaxed, 1), store(1, Relaxed, 2)],
                    vec![load(1, Relaxed), load(0, Relaxed)],
                ],
            ),
            forbidden: vec![],
            allowed: vec![vec![vec![], vec![2, 0]], vec![vec![], vec![2, 1]]],
        },
        // Message passing through release/acquire fences around
        // relaxed accesses (§29.8 fence synchronization).
        Litmus {
            name: "mp-fences",
            program: program(
                2,
                vec![
                    vec![store(0, Relaxed, 1), fence(Release), store(1, Relaxed, 2)],
                    vec![load(1, Relaxed), fence(Acquire), load(0, Relaxed)],
                ],
            ),
            forbidden: vec![vec![vec![], vec![2, 0]]],
            allowed: vec![vec![vec![], vec![2, 1]]],
        },
        // Load buffering: both loads seeing the other thread's later
        // store requires a future read, which the enumerated
        // no-future-reads fragment (and the engine) excludes.
        Litmus {
            name: "lb-relaxed",
            program: program(
                2,
                vec![
                    vec![load(0, Relaxed), store(1, Relaxed, 1)],
                    vec![load(1, Relaxed), store(0, Relaxed, 2)],
                ],
            ),
            forbidden: vec![vec![vec![2], vec![1]]],
            allowed: vec![
                vec![vec![0], vec![0]],
                vec![vec![2], vec![0]],
                vec![vec![0], vec![1]],
            ],
        },
        // Independent reads of independent writes: the two reader
        // threads disagreeing on the store order is the seq_cst
        // litmus (4 threads — the enumerator's small-scope maximum).
        Litmus {
            name: "iriw-seqcst",
            program: program(
                2,
                vec![
                    vec![store(0, SeqCst, 1)],
                    vec![store(1, SeqCst, 2)],
                    vec![load(0, SeqCst), load(1, SeqCst)],
                    vec![load(1, SeqCst), load(0, SeqCst)],
                ],
            ),
            forbidden: vec![vec![vec![], vec![], vec![1, 0], vec![2, 0]]],
            allowed: vec![vec![vec![], vec![], vec![1, 2], vec![2, 1]]],
        },
        // Write-write coherence observed through read-read coherence:
        // a reader can never see the same thread's stores reordered.
        Litmus {
            name: "coww-corr",
            program: program(
                1,
                vec![
                    vec![store(0, Relaxed, 1), store(0, Relaxed, 2)],
                    vec![load(0, Relaxed), load(0, Relaxed)],
                ],
            ),
            forbidden: vec![vec![vec![], vec![2, 1]], vec![vec![], vec![1, 0]]],
            allowed: vec![vec![vec![], vec![1, 2]], vec![vec![], vec![2, 2]]],
        },
        // Write-read coherence: a thread's own load never reads a
        // store hidden behind its latest write.
        Litmus {
            name: "cowr",
            program: program(
                1,
                vec![
                    vec![store(0, Relaxed, 1), load(0, Relaxed)],
                    vec![store(0, Relaxed, 2)],
                ],
            ),
            forbidden: vec![vec![vec![0], vec![]]],
            allowed: vec![vec![vec![1], vec![]], vec![vec![2], vec![]]],
        },
    ]
}

fn render_outcome(o: &[Vec<u64>]) -> String {
    let threads: Vec<String> = o
        .iter()
        .map(|vals| {
            let vs: Vec<String> = vals.iter().map(u64::to_string).collect();
            format!("[{}]", vs.join(","))
        })
        .collect();
    format!("[{}]", threads.join(" "))
}

fn render_table() -> String {
    let mut out = String::new();
    for l in table() {
        let outcomes = enumerate_outcomes(&l.program);
        out.push_str(l.name);
        out.push(':');
        for o in &outcomes {
            out.push(' ');
            out.push_str(&render_outcome(o));
        }
        out.push('\n');
    }
    out
}

#[test]
fn litmus_outcomes_have_the_textbook_shape() {
    for l in table() {
        let outcomes = enumerate_outcomes(&l.program);
        assert!(!outcomes.is_empty(), "{}: no outcomes enumerated", l.name);
        for f in &l.forbidden {
            assert!(
                !outcomes.contains(f),
                "{}: forbidden outcome {} was enumerated",
                l.name,
                render_outcome(f)
            );
        }
        for a in &l.allowed {
            assert!(
                outcomes.contains(a),
                "{}: expected outcome {} missing from {:?}",
                l.name,
                render_outcome(a),
                outcomes
                    .iter()
                    .map(|o| render_outcome(o))
                    .collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn engine_sweeps_stay_inside_the_enumerated_sets() {
    for l in table() {
        let allowed = enumerate_outcomes(&l.program);
        for (key, events) in sweep(&l.program, Config::new().with_seed(0xC11), 24) {
            let violations = check_trace(&events);
            assert!(
                violations.is_empty(),
                "{}: execution {} violated the axioms: {:?}",
                l.name,
                key.index,
                violations
            );
            let got = outcome(&events);
            assert!(
                allowed.contains(&got),
                "{}: execution {} outcome {} outside the enumerated set",
                l.name,
                key.index,
                render_outcome(&got)
            );
        }
    }
}

#[test]
fn litmus_outcome_table_matches_the_golden() {
    let current = render_table();
    if std::env::var_os("UPDATE_LITMUS_GOLDEN").is_some() {
        println!("{current}");
    }
    assert_eq!(
        current, GOLDEN,
        "litmus outcome table drifted; run with UPDATE_LITMUS_GOLDEN=1 \
         and update tests/golden_litmus.txt"
    );
}
