//! Executes a generated [`Program`] under the model.
//!
//! The interpreter is deliberately rigid so the fuzz oracle can reason
//! about traces without spawn/join events:
//!
//! * the main thread (model thread 0) only creates and initializes
//!   the shared locations and mutexes, spawns every worker, and joins
//!   them — it performs **no accesses after the first spawn**, so
//!   every thread-0 trace event is an initialization event that
//!   happens-before everything else (the *init-prefix contract* the
//!   oracle checks structurally);
//! * worker thread `k` of the program runs on model thread `k + 1`
//!   (spawn order), so trace thread ids map one-to-one onto program
//!   threads.

use crate::program::{Op, Program};
use c11tester::sync::atomic::{fence, RawAtomic};
use c11tester::sync::Mutex;
use c11tester::{CaptureSink, Config, Model, TraceEvent, TraceKey};
use std::sync::Arc;

/// Runs one execution of the program body. Call inside a model
/// execution (a [`Model::run`] or campaign closure).
pub fn run_program(p: &Program) {
    let locs: Arc<Vec<RawAtomic>> = Arc::new(
        (0..p.locs)
            .map(|i| RawAtomic::new(Some(format!("g{i}")), 0))
            .collect(),
    );
    let mutexes: Arc<Vec<Mutex<()>>> = Arc::new(
        (0..p.mutexes)
            .map(|i| Mutex::named(format!("m{i}"), ()))
            .collect(),
    );
    let mut handles = Vec::with_capacity(p.threads.len());
    for ops in &p.threads {
        let ops = ops.clone();
        let locs = Arc::clone(&locs);
        let mutexes = Arc::clone(&mutexes);
        handles.push(c11tester::thread::spawn(move || {
            run_ops(&ops, &locs, &mutexes)
        }));
    }
    for h in handles {
        h.join();
    }
}

/// Runs one execution of the program generated from `pseed` — the
/// body behind `gen:<pseed>` campaign targets. Generation is a pure
/// function of `pseed`, so re-generating per execution keeps the
/// target stateless and fork-server-safe.
pub fn run_generated(pseed: u64) {
    run_program(&Program::generate(pseed));
}

fn run_ops(ops: &[Op], locs: &[RawAtomic], mutexes: &[Mutex<()>]) {
    for op in ops {
        match op {
            Op::Load { loc, ord } => {
                let _ = locs[*loc].load(*ord);
            }
            Op::Store { loc, ord, value } => locs[*loc].store(*value, *ord),
            Op::Rmw { loc, ord, addend } => {
                let _ = locs[*loc].rmw(*ord, |old| old.wrapping_add(*addend));
            }
            Op::Cas {
                loc,
                success,
                failure,
                expected,
                new,
            } => {
                let _ = locs[*loc].compare_exchange(*expected, *new, *success, *failure);
            }
            Op::Fence { ord } => fence(*ord),
            Op::Region { mutex, ops } => {
                let _guard = mutexes[*mutex].lock();
                run_ops(ops, locs, mutexes);
            }
        }
    }
}

/// One captured execution of a sweep: its replay key and trace.
pub type SweepCapture = (TraceKey, Vec<TraceEvent>);

/// Runs `executions` model executions of `p` under `config` with
/// schedule tracing enabled and returns every captured trace in
/// execution-index order. This is the trace feed for the oracle: one
/// `(key, events)` pair per execution, keyed `(seed, 0, index)`.
pub fn sweep(p: &Program, config: Config, executions: u64) -> Vec<SweepCapture> {
    let was_tracing = c11tester::tracing_enabled();
    c11tester::set_tracing(true);
    let sink = CaptureSink::new();
    let mut model = Model::new(config).with_trace_sink(Box::new(sink.clone()));
    for _ in 0..executions {
        let report = model.run(|| run_program(p));
        assert!(
            report.failure.is_none(),
            "generated program failed: {:?}",
            report.failure
        );
    }
    c11tester::set_tracing(was_tracing);
    let mut captures = sink.take();
    captures.sort_by_key(|(k, _)| k.index);
    captures
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11tester_telemetry::TraceKind;

    #[test]
    fn sweep_traces_are_keyed_and_deterministic() {
        let p = Program::generate(11);
        let a = sweep(&p, Config::new().with_seed(7), 4);
        let b = sweep(&p, Config::new().with_seed(7), 4);
        assert_eq!(a.len(), 4);
        for (i, ((ka, ea), (kb, eb))) in a.iter().zip(&b).enumerate() {
            assert_eq!(ka.index, i as u64);
            assert_eq!(ka.seed, 7);
            assert_eq!(ka, kb);
            assert_eq!(ea, eb, "execution {i} not replay-deterministic");
            assert!(!ea.is_empty());
        }
    }

    #[test]
    fn init_prefix_contract_holds() {
        // Every thread-0 event precedes every worker event, and worker
        // thread ids are 1..=threads.
        for pseed in [0, 3, 11, 42] {
            let p = Program::generate(pseed);
            for (_, events) in sweep(&p, Config::new().with_seed(1), 2) {
                let first_worker = events
                    .iter()
                    .position(|e| e.thread != 0)
                    .expect("workers commit events");
                assert!(
                    events[..first_worker].iter().all(|e| e.thread == 0),
                    "pseed {pseed}: thread-0 event after a worker event"
                );
                assert!(events[first_worker..].iter().all(|e| e.thread != 0));
                for e in &events {
                    assert!((e.thread as usize) <= p.threads.len());
                }
            }
        }
    }

    #[test]
    fn fences_appear_in_traces() {
        // pseed chosen so the program contains a fence.
        let fenced = (0..200)
            .map(Program::generate)
            .find(|p| {
                p.threads
                    .iter()
                    .any(|t| t.iter().any(|op| matches!(op, Op::Fence { .. })))
            })
            .expect("some program has a fence");
        let captures = sweep(&fenced, Config::new().with_seed(3), 2);
        let has_fence = captures
            .iter()
            .any(|(_, ev)| ev.iter().any(|e| e.kind == TraceKind::Fence));
        assert!(has_fence, "fence ops must produce fence trace events");
    }
}
