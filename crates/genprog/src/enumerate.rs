//! Small-scope exhaustive outcome enumeration.
//!
//! [`enumerate_outcomes`] computes the **full set of axiom-allowed
//! outcomes** of a small program by brute force: depth-first search
//! over every thread interleaving × every reads-from choice among the
//! already-committed stores, synthesizing a trace for each leaf and
//! keeping the outcomes of exactly those traces the
//! [`crate::oracle`] accepts.
//!
//! Restricting reads to *already-committed* stores matches the
//! engine's no-future-reads fragment (paper §3: C11 without
//! load-buffering cycles), so the soundness check the fuzzer runs is
//! `observed ⊆ allowed` — every outcome the model exhibits must be in
//! the enumerated set. The converse need not hold: a finite schedule
//! sweep has no completeness obligation.

use crate::oracle;
use crate::program::{order_name, Op, Program};
use c11tester::{TraceEvent, TraceKind};
use std::collections::BTreeSet;

/// An outcome: per worker thread, the values its reads observed in
/// program order (same shape as [`oracle::outcome`]).
pub type Outcome = Vec<Vec<u64>>;

/// Caps keeping the search tractable; [`Program::is_small_scope`] is
/// stricter (≤ 3 threads, ≤ 6 ops) — the looser limits here admit the
/// hand-written 4-thread litmus programs (IRIW).
const MAX_THREADS: usize = 4;
const MAX_OPS: usize = 10;

/// A committed store during enumeration.
#[derive(Clone)]
struct StoreRec {
    seq: u64,
    value: u64,
    /// Consumed by an RMW (atomicity: at most one).
    consumed: bool,
}

struct Search<'a> {
    prog: &'a Program,
    /// Per-location committed stores, index = location.
    stores: Vec<Vec<StoreRec>>,
    events: Vec<TraceEvent>,
    pcs: Vec<usize>,
    next_seq: u64,
    outcomes: BTreeSet<Outcome>,
}

/// Enumerates the axiom-allowed outcome set of `p`.
///
/// # Panics
///
/// Panics if `p` exceeds the enumeration caps (> 4 threads, > 10 ops)
/// or contains mutex regions — callers gate on
/// [`Program::is_small_scope`] or construct litmus-sized programs.
pub fn enumerate_outcomes(p: &Program) -> BTreeSet<Outcome> {
    assert!(p.threads.len() <= MAX_THREADS, "too many threads");
    assert!(p.total_ops() <= MAX_OPS, "too many ops");
    assert!(
        p.threads
            .iter()
            .all(|t| t.iter().all(|op| !matches!(op, Op::Region { .. }))),
        "regions are not enumerable"
    );
    let mut s = Search {
        prog: p,
        stores: vec![Vec::new(); p.locs],
        events: Vec::new(),
        pcs: vec![0; p.threads.len()],
        next_seq: 1,
        outcomes: BTreeSet::new(),
    };
    // Init prefix: one non-atomic thread-0 store of 0 per location,
    // mirroring the interpreter's `RawAtomic::new` calls.
    for loc in 0..p.locs {
        let seq = s.next_seq;
        s.next_seq += 1;
        s.stores[loc].push(StoreRec {
            seq,
            value: 0,
            consumed: false,
        });
        s.events.push(TraceEvent {
            kind: TraceKind::Store,
            thread: 0,
            seq,
            obj: loc as u64,
            order: "Relaxed",
            access: "non-atomic",
            value: 0,
            rf: None,
            old: None,
        });
    }
    dfs(&mut s);
    s.outcomes
}

fn dfs(s: &mut Search<'_>) {
    let mut done = true;
    for t in 0..s.prog.threads.len() {
        if s.pcs[t] >= s.prog.threads[t].len() {
            continue;
        }
        done = false;
        let op = s.prog.threads[t][s.pcs[t]].clone();
        s.pcs[t] += 1;
        step(s, t, &op);
        s.pcs[t] -= 1;
    }
    if done {
        let trace = &s.events;
        if oracle::check_trace(trace).is_empty() {
            s.outcomes.insert(oracle::outcome(trace));
        }
    }
}

/// Executes one op of thread `t` (trace thread `t + 1`), branching
/// over reads-from choices, then recurses.
fn step(s: &mut Search<'_>, t: usize, op: &Op) {
    let thread = (t + 1) as u64;
    match op {
        Op::Store { loc, ord, value } => {
            let seq = s.next_seq;
            s.next_seq += 1;
            s.stores[*loc].push(StoreRec {
                seq,
                value: *value,
                consumed: false,
            });
            s.events.push(TraceEvent {
                kind: TraceKind::Store,
                thread,
                seq,
                obj: *loc as u64,
                order: order_name(*ord),
                access: "atomic",
                value: *value,
                rf: None,
                old: None,
            });
            dfs(s);
            s.events.pop();
            s.stores[*loc].pop();
            s.next_seq -= 1;
        }
        Op::Load { loc, ord } => {
            for i in 0..s.stores[*loc].len() {
                let (src_seq, src_value) = (s.stores[*loc][i].seq, s.stores[*loc][i].value);
                let seq = s.next_seq;
                s.next_seq += 1;
                s.events.push(TraceEvent {
                    kind: TraceKind::Load,
                    thread,
                    seq,
                    obj: *loc as u64,
                    order: order_name(*ord),
                    access: "atomic",
                    value: src_value,
                    rf: Some(src_seq),
                    old: None,
                });
                dfs(s);
                s.events.pop();
                s.next_seq -= 1;
            }
        }
        Op::Rmw { loc, ord, addend } => {
            for i in 0..s.stores[*loc].len() {
                if s.stores[*loc][i].consumed {
                    continue;
                }
                let (src_seq, old) = (s.stores[*loc][i].seq, s.stores[*loc][i].value);
                let new = old.wrapping_add(*addend);
                s.stores[*loc][i].consumed = true;
                commit_rmw_branch(s, thread, *loc, order_name(*ord), src_seq, old, new);
                s.stores[*loc][i].consumed = false;
            }
        }
        Op::Cas {
            loc,
            success,
            failure,
            expected,
            new,
        } => {
            for i in 0..s.stores[*loc].len() {
                let (src_seq, old) = (s.stores[*loc][i].seq, s.stores[*loc][i].value);
                if old == *expected {
                    // Successful CAS: an RMW consuming the source.
                    if s.stores[*loc][i].consumed {
                        continue;
                    }
                    s.stores[*loc][i].consumed = true;
                    commit_rmw_branch(s, thread, *loc, order_name(*success), src_seq, old, *new);
                    s.stores[*loc][i].consumed = false;
                } else {
                    // Failed CAS commits as a plain load with the
                    // failure ordering.
                    let seq = s.next_seq;
                    s.next_seq += 1;
                    s.events.push(TraceEvent {
                        kind: TraceKind::Load,
                        thread,
                        seq,
                        obj: *loc as u64,
                        order: order_name(*failure),
                        access: "atomic",
                        value: old,
                        rf: Some(src_seq),
                        old: None,
                    });
                    dfs(s);
                    s.events.pop();
                    s.next_seq -= 1;
                }
            }
        }
        Op::Fence { ord } => {
            // Relaxed fences never reach the grammar; others commit
            // one fence event.
            let seq = s.next_seq;
            s.next_seq += 1;
            s.events.push(TraceEvent {
                kind: TraceKind::Fence,
                thread,
                seq,
                obj: c11tester::FENCE_OBJ,
                order: order_name(*ord),
                access: "fence",
                value: 0,
                rf: None,
                old: None,
            });
            dfs(s);
            s.events.pop();
            s.next_seq -= 1;
        }
        Op::Region { .. } => unreachable!("gated by the caps check"),
    }
}

fn commit_rmw_branch(
    s: &mut Search<'_>,
    thread: u64,
    loc: usize,
    order: &'static str,
    src_seq: u64,
    old: u64,
    new: u64,
) {
    let seq = s.next_seq;
    s.next_seq += 1;
    s.stores[loc].push(StoreRec {
        seq,
        value: new,
        consumed: false,
    });
    s.events.push(TraceEvent {
        kind: TraceKind::Rmw,
        thread,
        seq,
        obj: loc as u64,
        order,
        access: "atomic",
        value: new,
        rf: Some(src_seq),
        old: Some(old),
    });
    dfs(s);
    s.events.pop();
    s.stores[loc].pop();
    s.next_seq -= 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11tester::MemOrder;

    fn prog(locs: usize, threads: Vec<Vec<Op>>) -> Program {
        Program {
            pseed: 0,
            locs,
            mutexes: 0,
            threads,
        }
    }

    fn store(loc: usize, ord: MemOrder, value: u64) -> Op {
        Op::Store { loc, ord, value }
    }

    fn load(loc: usize, ord: MemOrder) -> Op {
        Op::Load { loc, ord }
    }

    #[test]
    fn store_buffering_allows_both_zero_under_relaxed() {
        // SB: T1: x=1; r1=y.  T2: y=1; r2=x.  (0,0) allowed.
        let p = prog(
            2,
            vec![
                vec![store(0, MemOrder::Relaxed, 1), load(1, MemOrder::Relaxed)],
                vec![store(1, MemOrder::Relaxed, 1), load(0, MemOrder::Relaxed)],
            ],
        );
        let outcomes = enumerate_outcomes(&p);
        assert!(outcomes.contains(&vec![vec![0], vec![0]]));
        assert!(outcomes.contains(&vec![vec![1], vec![1]]));
        assert_eq!(outcomes.len(), 4);
    }

    #[test]
    fn message_passing_release_acquire_forbids_stale_data() {
        // MP: T1: x=1 rlx; f=1 rel.  T2: r1=f acq; r2=x rlx.
        let p = prog(
            2,
            vec![
                vec![
                    store(0, MemOrder::Relaxed, 1),
                    store(1, MemOrder::Release, 1),
                ],
                vec![load(1, MemOrder::Acquire), load(0, MemOrder::Relaxed)],
            ],
        );
        let outcomes = enumerate_outcomes(&p);
        // Saw the flag → must see the data.
        assert!(!outcomes.contains(&vec![vec![], vec![1, 0]]));
        assert!(outcomes.contains(&vec![vec![], vec![1, 1]]));
        assert!(outcomes.contains(&vec![vec![], vec![0, 0]]));
    }

    #[test]
    fn load_buffering_cycle_is_outside_the_fragment() {
        // LB: T1: r1=x; y=1.  T2: r2=y; x=1.  (1,1) needs a future
        // read — the no-future-reads fragment forbids it.
        let p = prog(
            2,
            vec![
                vec![load(0, MemOrder::Relaxed), store(1, MemOrder::Relaxed, 1)],
                vec![load(1, MemOrder::Relaxed), store(0, MemOrder::Relaxed, 1)],
            ],
        );
        let outcomes = enumerate_outcomes(&p);
        assert!(!outcomes.contains(&vec![vec![1], vec![1]]));
        assert!(outcomes.contains(&vec![vec![0], vec![0]]));
    }

    #[test]
    fn rmw_chain_outcomes_are_exact() {
        // Two fetch-adds on one cell: one of them reads 0, the other
        // reads the first's result — never both 0.
        let p = prog(
            1,
            vec![
                vec![Op::Rmw {
                    loc: 0,
                    ord: MemOrder::Relaxed,
                    addend: 1,
                }],
                vec![Op::Rmw {
                    loc: 0,
                    ord: MemOrder::Relaxed,
                    addend: 2,
                }],
            ],
        );
        let outcomes = enumerate_outcomes(&p);
        let expected: BTreeSet<Outcome> = [vec![vec![0], vec![1]], vec![vec![2], vec![0]]]
            .into_iter()
            .collect();
        assert_eq!(outcomes, expected);
    }
}
