//! The per-pseed fuzz check: sweep, oracle, small-scope enumerator,
//! shrink. The `c11fuzz` binary is a thin CLI over [`fuzz_pseed`].

use crate::enumerate::enumerate_outcomes;
use crate::oracle;
use crate::program::Program;
use crate::report::MismatchReport;
use crate::run::sweep;
use crate::shrink::shrink;
use c11tester::Config;

/// How many model executions each sweep runs.
#[derive(Clone, Copy, Debug)]
pub struct FuzzParams {
    /// Model seed of the sweep.
    pub seed: u64,
    /// Executions per program.
    pub executions: u64,
    /// Also run the tiny-program enumerator soundness check.
    pub check_tiny: bool,
}

impl Default for FuzzParams {
    fn default() -> Self {
        FuzzParams {
            seed: 0xC11,
            executions: 32,
            check_tiny: true,
        }
    }
}

fn config(seed: u64) -> Config {
    Config::new().with_seed(seed)
}

/// Fuzzes one program seed: sweeps the full-grammar program through
/// the axiom oracle, and (when `check_tiny`) sweeps the small-scope
/// program checking `observed ⊆ enumerated` as well. Every mismatch
/// is shrunk and reported; an empty return means the model and the
/// oracle agreed on every execution.
pub fn fuzz_pseed(pseed: u64, params: FuzzParams) -> Vec<MismatchReport> {
    let mut reports = Vec::new();
    oracle_sweep(&Program::generate(pseed), params, &mut reports);
    if params.check_tiny {
        tiny_sweep(&Program::generate_tiny(pseed), params, &mut reports);
    }
    reports
}

/// Sweeps `p` and oracle-checks every committed trace.
fn oracle_sweep(p: &Program, params: FuzzParams, reports: &mut Vec<MismatchReport>) {
    for (key, events) in sweep(p, config(params.seed), params.executions) {
        let violations = oracle::check_trace(&events);
        if violations.is_empty() {
            continue;
        }
        let shrunk = shrink(p, |cand| {
            sweep(cand, config(params.seed), params.executions)
                .iter()
                .any(|(_, ev)| !oracle::check_trace(ev).is_empty())
        });
        reports.push(MismatchReport {
            pseed: p.pseed,
            seed: key.seed,
            epoch: key.epoch,
            index: key.index,
            scope: "oracle",
            violations,
            outcome: None,
            program: p.render(),
            shrunk: shrunk.render(),
        });
    }
}

/// Sweeps the tiny program and checks every observed outcome against
/// the enumerated axiom-allowed set (plus the oracle, which is
/// implied by membership but reported separately when it fires).
fn tiny_sweep(p: &Program, params: FuzzParams, reports: &mut Vec<MismatchReport>) {
    debug_assert!(p.is_small_scope());
    let allowed = enumerate_outcomes(p);
    for (key, events) in sweep(p, config(params.seed), params.executions) {
        let violations = oracle::check_trace(&events);
        let outcome = oracle::outcome(&events);
        if violations.is_empty() && allowed.contains(&outcome) {
            continue;
        }
        let shrunk = shrink(p, |cand| {
            if !cand.is_small_scope() {
                return false;
            }
            let allowed = enumerate_outcomes(cand);
            sweep(cand, config(params.seed), params.executions)
                .iter()
                .any(|(_, ev)| {
                    !oracle::check_trace(ev).is_empty() || !allowed.contains(&oracle::outcome(ev))
                })
        });
        reports.push(MismatchReport {
            pseed: p.pseed,
            seed: key.seed,
            epoch: key.epoch,
            index: key.index,
            scope: if violations.is_empty() {
                "enumerator"
            } else {
                "oracle"
            },
            violations,
            outcome: Some(outcome),
            program: p.render(),
            shrunk: shrunk.render(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_sweep_finds_no_mismatches() {
        // The real acceptance sweep (64 pseeds) runs in CI via
        // `c11fuzz`; keep the in-tree test small.
        let params = FuzzParams {
            seed: 0xC11,
            executions: 8,
            check_tiny: true,
        };
        for pseed in 0..6 {
            let reports = fuzz_pseed(pseed, params);
            assert!(
                reports.is_empty(),
                "pseed {pseed}: {}",
                reports
                    .iter()
                    .map(|r| r.to_json())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}
