//! The independent C11-axiom trace oracle.
//!
//! [`check_trace`] re-validates one committed execution trace against
//! the C11 axioms **without sharing any code with the engine**: no
//! `ClockVector`, no mo-graph — plain `Vec<u64>` clocks and an
//! explicit per-location coherence constraint graph, rebuilt from the
//! trace alone. A disagreement between the two is a mismatch worth a
//! `c11fuzz/v1` report: either the engine committed an execution the
//! axioms forbid, or the oracle's reading of the axioms drifted.
//!
//! The oracle relies on the interpreter's *init-prefix contract*
//! (see [`crate::run`]): all thread-0 events are non-atomic
//! initialization stores that happen-before every worker event (the
//! fork edge), and thread 0 commits nothing after the first worker
//! event. That contract is itself checked structurally, so a trace
//! from a different harness fails loudly instead of silently passing.
//!
//! Checks, in order (later phases assume earlier ones passed):
//!
//! 1. **structural** — strictly increasing sequence numbers, the
//!    init-prefix shape, field well-formedness per event kind;
//! 2. **rf** — every read's reads-from edge points at an earlier
//!    store to the same location whose written value matches the
//!    value read, and no store is consumed by two RMWs;
//! 3. **coherence** — the per-location constraint graph (CoWW, CoWR,
//!    CoRW, CoRR, RMW atomicity/immediacy, SC store order) is
//!    acyclic;
//! 4. **sc** — seq_cst reads obey C++11 §29.3p3 against the total SC
//!    order (witnessed by commit order): an SC read may take its
//!    value from the last SC write `W` preceding it in SC order, or
//!    from a non-SC write that does not happen-before `W`. The three
//!    SC *fence* rules (§29.3p4–6) constrain modification order
//!    instead, so those are flagged only when the coherence graph
//!    *entails* the forbidden mo — never on an undetermined mo.

use c11tester::{TraceEvent, TraceKind, FENCE_OBJ};
use std::collections::BTreeMap;

/// One axiom violation found in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The rule family that failed: `structural`, `rf`, `coherence`
    /// or `sc`.
    pub rule: &'static str,
    /// Human-readable description with the offending sequence numbers.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

fn is_acquire(order: &str) -> bool {
    matches!(order, "Acquire" | "AcqRel" | "SeqCst")
}

fn is_release(order: &str) -> bool {
    matches!(order, "Release" | "AcqRel" | "SeqCst")
}

/// Naive clock helpers over plain `Vec<u64>` (deliberately not the
/// engine's `ClockVector`).
fn cv_union(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

fn cv_set(dst: &mut Vec<u64>, slot: usize, value: u64) {
    if dst.len() <= slot {
        dst.resize(slot + 1, 0);
    }
    dst[slot] = value;
}

/// Per-event derived state after the clock replay.
struct EvState {
    /// The thread's clock right after this event committed (includes
    /// the event's own slot and any acquire union it performed).
    clock: Vec<u64>,
    /// For writes: the clock an acquiring reader obtains (`RF_s`).
    rf_cv: Vec<u64>,
}

/// The oracle's view of one trace, built by [`check_trace`].
struct Analysis<'a> {
    events: &'a [TraceEvent],
    /// seq → event index.
    by_seq: BTreeMap<u64, usize>,
    state: Vec<EvState>,
}

impl<'a> Analysis<'a> {
    /// Happens-before between trace events (strict).
    fn hb(&self, a: usize, b: usize) -> bool {
        let (ea, eb) = (&self.events[a], &self.events[b]);
        if ea.seq >= eb.seq {
            return false;
        }
        if ea.thread == 0 {
            // Init-prefix contract: thread 0 forked every worker after
            // all of its events, so the fork edge orders them.
            return true;
        }
        if eb.thread == 0 {
            return false;
        }
        self.state[b]
            .clock
            .get(ea.thread as usize)
            .is_some_and(|&c| c >= ea.seq)
    }

    fn is_write(&self, i: usize) -> bool {
        matches!(self.events[i].kind, TraceKind::Store | TraceKind::Rmw)
    }
}

/// Re-validates a committed execution trace against the C11 axioms.
/// Returns every violation found (empty = the trace is axiom-
/// consistent).
pub fn check_trace(events: &[TraceEvent]) -> Vec<Violation> {
    let mut out = Vec::new();
    structural(events, &mut out);
    if !out.is_empty() {
        return out;
    }
    let by_seq: BTreeMap<u64, usize> = events.iter().enumerate().map(|(i, e)| (e.seq, i)).collect();
    rf_validity(events, &by_seq, &mut out);
    if !out.is_empty() {
        return out;
    }
    let analysis = Analysis {
        events,
        state: replay_clocks(events, &by_seq),
        by_seq,
    };
    let graphs = coherence(&analysis, &mut out);
    sc_checks(&analysis, &graphs, &mut out);
    out
}

/// Phase 1: trace shape.
fn structural(events: &[TraceEvent], out: &mut Vec<Violation>) {
    let mut last_seq = 0;
    let mut seen_worker = false;
    for e in events {
        if e.seq <= last_seq {
            out.push(Violation {
                rule: "structural",
                detail: format!("seq {} not strictly increasing (prev {})", e.seq, last_seq),
            });
            return;
        }
        last_seq = e.seq;
        if e.thread == 0 {
            if seen_worker {
                out.push(Violation {
                    rule: "structural",
                    detail: format!("thread-0 event at seq {} after a worker event", e.seq),
                });
            }
            if e.kind != TraceKind::Store || e.access != "non-atomic" {
                out.push(Violation {
                    rule: "structural",
                    detail: format!(
                        "thread-0 event at seq {} is not a non-atomic init store",
                        e.seq
                    ),
                });
            }
        } else {
            seen_worker = true;
            if e.access == "non-atomic" {
                out.push(Violation {
                    rule: "structural",
                    detail: format!("worker non-atomic access at seq {}", e.seq),
                });
            }
        }
        let shape_ok = match e.kind {
            TraceKind::Load => e.rf.is_some() && e.old.is_none(),
            TraceKind::Store => e.rf.is_none() && e.old.is_none(),
            TraceKind::Rmw => e.rf.is_some() && e.old.is_some(),
            TraceKind::Fence => e.rf.is_none() && e.old.is_none() && e.obj == FENCE_OBJ,
        };
        if !shape_ok {
            out.push(Violation {
                rule: "structural",
                detail: format!("malformed {} event at seq {}", e.kind.name(), e.seq),
            });
        }
    }
}

/// Phase 2: reads-from edges.
fn rf_validity(events: &[TraceEvent], by_seq: &BTreeMap<u64, usize>, out: &mut Vec<Violation>) {
    let mut rmw_consumed: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        let Some(rf) = e.rf else { continue };
        let src = by_seq.get(&rf).map(|&i| &events[i]);
        let Some(src) = src else {
            out.push(Violation {
                rule: "rf",
                detail: format!("seq {} reads from nonexistent seq {rf}", e.seq),
            });
            continue;
        };
        if !matches!(src.kind, TraceKind::Store | TraceKind::Rmw) {
            out.push(Violation {
                rule: "rf",
                detail: format!("seq {} reads from non-store seq {rf}", e.seq),
            });
            continue;
        }
        if src.obj != e.obj {
            out.push(Violation {
                rule: "rf",
                detail: format!(
                    "seq {} (obj {}) reads from seq {rf} (obj {})",
                    e.seq, e.obj, src.obj
                ),
            });
        }
        if rf >= e.seq {
            out.push(Violation {
                rule: "rf",
                detail: format!("seq {} reads from the future (seq {rf})", e.seq),
            });
        }
        let read = match e.kind {
            TraceKind::Load => e.value,
            TraceKind::Rmw => e.old.unwrap_or(0),
            _ => continue,
        };
        if read != src.value {
            out.push(Violation {
                rule: "rf",
                detail: format!(
                    "seq {} read {read} but its rf source seq {rf} wrote {}",
                    e.seq, src.value
                ),
            });
        }
        if e.kind == TraceKind::Rmw {
            if let Some(prev) = rmw_consumed.insert(rf, e.seq) {
                out.push(Violation {
                    rule: "rf",
                    detail: format!("RMWs at seqs {prev} and {} both read seq {rf}", e.seq),
                });
            }
        }
    }
}

/// Phase 3 input: mirrors the Fig. 9 clock rules event by event with
/// naive vectors. The mirrored order of operations matters and is
/// checked against the engine by the fuzz sweeps:
///
/// * store: own slot first, then `RF_s` = cv (release) or the
///   thread's release-fence clock, plus the source's `RF_s` for RMWs
///   (release-sequence continuation);
/// * load: own slot, then acquire-union of the source's `RF_s` into
///   cv (acquire) or the acquire-fence buffer (relaxed);
/// * RMW: the load half's union happens **before** the store half's
///   slot assignment;
/// * fence: acquire side folds the acquire buffer into cv before the
///   release side snapshots cv.
fn replay_clocks(events: &[TraceEvent], by_seq: &BTreeMap<u64, usize>) -> Vec<EvState> {
    struct Thread {
        cv: Vec<u64>,
        fence_acq: Vec<u64>,
        fence_rel: Vec<u64>,
    }
    let nthreads = events.iter().map(|e| e.thread + 1).max().unwrap_or(1) as usize;
    let mut threads: Vec<Thread> = (0..nthreads)
        .map(|_| Thread {
            cv: Vec::new(),
            fence_acq: Vec::new(),
            fence_rel: Vec::new(),
        })
        .collect();
    let mut state: Vec<EvState> = Vec::with_capacity(events.len());
    for e in events {
        let t = e.thread as usize;
        let mut rf_cv = Vec::new();
        match e.kind {
            TraceKind::Store => {
                cv_set(&mut threads[t].cv, t, e.seq);
                if e.access != "non-atomic" {
                    rf_cv = if is_release(e.order) {
                        threads[t].cv.clone()
                    } else {
                        threads[t].fence_rel.clone()
                    };
                }
            }
            TraceKind::Load => {
                cv_set(&mut threads[t].cv, t, e.seq);
                let src_rf = state[by_seq[&e.rf.unwrap()]].rf_cv.clone();
                if is_acquire(e.order) {
                    cv_union(&mut threads[t].cv, &src_rf);
                } else {
                    cv_union(&mut threads[t].fence_acq, &src_rf);
                }
            }
            TraceKind::Rmw => {
                let src_rf = state[by_seq[&e.rf.unwrap()]].rf_cv.clone();
                if is_acquire(e.order) {
                    cv_union(&mut threads[t].cv, &src_rf);
                } else {
                    cv_union(&mut threads[t].fence_acq, &src_rf);
                }
                cv_set(&mut threads[t].cv, t, e.seq);
                rf_cv = if is_release(e.order) {
                    threads[t].cv.clone()
                } else {
                    threads[t].fence_rel.clone()
                };
                cv_union(&mut rf_cv, &src_rf);
            }
            TraceKind::Fence => {
                cv_set(&mut threads[t].cv, t, e.seq);
                if is_acquire(e.order) {
                    let acq = threads[t].fence_acq.clone();
                    cv_union(&mut threads[t].cv, &acq);
                }
                if is_release(e.order) {
                    threads[t].fence_rel = threads[t].cv.clone();
                }
            }
        }
        state.push(EvState {
            clock: threads[t].cv.clone(),
            rf_cv,
        });
    }
    state
}

/// One location's coherence constraint graph: nodes are the write
/// events (by trace index), `edge[i][j]` means "write i is
/// modification-order-before write j".
struct LocGraph {
    obj: u64,
    writes: Vec<usize>,
    edge: Vec<Vec<bool>>,
}

impl LocGraph {
    /// Transitive closure (the graphs are tiny — Floyd-Warshall).
    fn close(&self) -> Vec<Vec<bool>> {
        let n = self.writes.len();
        let mut r = self.edge.clone();
        for k in 0..n {
            // Row k is fixed during round k (r[k][j] |= r[k][k] && r[k][j]
            // changes nothing), so a snapshot is safe.
            let row_k = r[k].clone();
            for row in &mut r {
                if row[k] {
                    for (rij, &rkj) in row.iter_mut().zip(&row_k) {
                        *rij = *rij || rkj;
                    }
                }
            }
        }
        r
    }

    /// Whether the entailed modification order puts the write at trace
    /// index `a` before the one at `b`.
    fn entails_before(&self, a: usize, b: usize) -> bool {
        let (Some(ia), Some(ib)) = (
            self.writes.iter().position(|&w| w == a),
            self.writes.iter().position(|&w| w == b),
        ) else {
            return false;
        };
        self.close()[ia][ib]
    }
}

/// Phase 3: per-location coherence. Returns the (post-fixpoint)
/// graphs so the SC phase can query entailed mo.
fn coherence(an: &Analysis<'_>, out: &mut Vec<Violation>) -> Vec<LocGraph> {
    let mut objs: Vec<u64> = an
        .events
        .iter()
        .filter(|e| e.obj != FENCE_OBJ)
        .map(|e| e.obj)
        .collect();
    objs.sort_unstable();
    objs.dedup();

    let mut graphs = Vec::new();
    for obj in objs {
        let writes: Vec<usize> = (0..an.events.len())
            .filter(|&i| an.events[i].obj == obj && an.is_write(i))
            .collect();
        let reads: Vec<usize> = (0..an.events.len())
            .filter(|&i| {
                an.events[i].obj == obj
                    && matches!(an.events[i].kind, TraceKind::Load | TraceKind::Rmw)
            })
            .collect();
        let n = writes.len();
        let windex: BTreeMap<u64, usize> = writes
            .iter()
            .enumerate()
            .map(|(k, &i)| (an.events[i].seq, k))
            .collect();
        let src_of = |r: usize| windex[&an.events[r].rf.unwrap()];
        let mut g = LocGraph {
            obj,
            writes: writes.clone(),
            edge: vec![vec![false; n]; n],
        };

        // CoWW: hb between writes orders mo.
        for (a, &wa) in writes.iter().enumerate() {
            for (b, &wb) in writes.iter().enumerate() {
                if a != b && an.hb(wa, wb) {
                    g.edge[a][b] = true;
                }
            }
        }
        for &r in &reads {
            let s = src_of(r);
            // CoWR: a write hb-before the read cannot be mo-after the
            // store read from.
            for (w, &we) in writes.iter().enumerate() {
                if w != s && an.hb(we, r) {
                    g.edge[w][s] = true;
                }
            }
            // CoRW: a write hb-after the read is mo-after the store
            // read from.
            for (w, &we) in writes.iter().enumerate() {
                if w != s && an.hb(r, we) {
                    g.edge[s][w] = true;
                }
            }
        }
        // CoRR: hb-ordered reads of the same location see mo-ordered
        // stores.
        for (i, &r1) in reads.iter().enumerate() {
            for &r2 in &reads[i + 1..] {
                let (s1, s2) = (src_of(r1), src_of(r2));
                if s1 != s2 && an.hb(r1, r2) {
                    g.edge[s1][s2] = true;
                }
            }
        }
        // SC stores to one location appear in mo in commit order (the
        // commit order witnesses the SC total order).
        let sc_writes: Vec<usize> = (0..n)
            .filter(|&k| an.events[writes[k]].order == "SeqCst")
            .collect();
        for pair in sc_writes.windows(2) {
            g.edge[pair[0]][pair[1]] = true;
        }
        // RMW: reads-from edge is an mo edge, and the RMW is the
        // *immediate* mo-successor — every other write mo-after the
        // source must be mo-after the RMW. Fixpoint: forcing edges can
        // reveal more reachability.
        let rmws: Vec<(usize, usize)> = reads
            .iter()
            .filter(|&&r| an.events[r].kind == TraceKind::Rmw)
            .map(|&r| (windex[&an.events[r].seq], src_of(r)))
            .collect();
        for &(rmw, s) in &rmws {
            g.edge[s][rmw] = true;
        }
        loop {
            let reach = g.close();
            let mut changed = false;
            for &(rmw, s) in &rmws {
                for (w, &after_s) in reach[s].iter().enumerate() {
                    if w != rmw && w != s && after_s && !g.edge[rmw][w] {
                        g.edge[rmw][w] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let reach = g.close();
        if let Some(k) = (0..n).find(|&k| reach[k][k]) {
            out.push(Violation {
                rule: "coherence",
                detail: format!(
                    "modification-order cycle at obj {obj} through the write at seq {}",
                    an.events[writes[k]].seq
                ),
            });
        }
        graphs.push(g);
    }
    graphs
}

/// Phase 4: seq_cst reads and fences against the commit-order SC
/// witness.
///
/// The plain SC-read rule is C++11 §29.3p3 *to the letter*: with `W`
/// the last SC write to the location preceding the read in the SC
/// order, the read may take its value only from `W` itself, from an
/// SC write after `W` (impossible here — `W` is the last one), or
/// from a non-SC write that does **not happen before** `W`. Note the
/// condition is happens-before, not modification order — C++11
/// famously permits an SC read of a non-SC store that is mo-before
/// `W` (the weakness C++20 closed with coherence-ordered-before), and
/// the engine's Fig. 12 candidate filter implements exactly the C++11
/// reading, so the oracle must too.
///
/// The three SC *fence* rules (§29.3p4–6) constrain modification
/// order, so those are flagged only when the coherence graph
/// *entails* that the store read is mo-before the fence-required
/// write — never on an undetermined mo (no false positives).
fn sc_checks(an: &Analysis<'_>, graphs: &[LocGraph], out: &mut Vec<Violation>) {
    let sc_fences: Vec<usize> = (0..an.events.len())
        .filter(|&i| an.events[i].kind == TraceKind::Fence && an.events[i].order == "SeqCst")
        .collect();
    for r in 0..an.events.len() {
        let e = &an.events[r];
        if !matches!(e.kind, TraceKind::Load | TraceKind::Rmw) {
            continue;
        }
        let Some(g) = graphs.iter().find(|g| g.obj == e.obj) else {
            continue;
        };
        let src = an.by_seq[&e.rf.unwrap()];
        let require = |out: &mut Vec<Violation>, w: usize, why: &str| {
            if w != src && g.entails_before(src, w) {
                out.push(Violation {
                    rule: "sc",
                    detail: format!(
                        "seq {} reads seq {} which is mo-before the {why} at seq {}",
                        e.seq, an.events[src].seq, an.events[w].seq
                    ),
                });
            }
        };
        let last_sc_write_before = |seq: u64| {
            g.writes
                .iter()
                .copied()
                .filter(|&w| an.events[w].order == "SeqCst" && an.events[w].seq < seq)
                .max_by_key(|&w| an.events[w].seq)
        };
        // [SC READ] §29.3p3: an SC read must read the last SC write
        // `W` preceding it in the SC order, or a non-SC write that
        // does not happen-before `W`.
        if e.order == "SeqCst" {
            if let Some(w) = last_sc_write_before(e.seq) {
                if w != src {
                    let src_sc = an.events[src].order == "SeqCst";
                    if src_sc || an.hb(src, w) {
                        out.push(Violation {
                            rule: "sc",
                            detail: format!(
                                "SC read at seq {} reads seq {} which is {} the last SC write at seq {}",
                                e.seq,
                                an.events[src].seq,
                                if src_sc { "SC-before" } else { "hb-before" },
                                an.events[w].seq
                            ),
                        });
                    }
                }
            }
        }
        // [SC FENCE / READ] a read po-after an SC fence must not read
        // mo-before the last SC write preceding the fence.
        if let Some(&f) = sc_fences
            .iter()
            .filter(|&&f| an.events[f].thread == e.thread && an.events[f].seq < e.seq)
            .max_by_key(|&&f| an.events[f].seq)
        {
            if let Some(w) = last_sc_write_before(an.events[f].seq) {
                require(out, w, "SC-fenced write");
            }
        }
        for &f in &sc_fences {
            if an.events[f].seq >= e.seq {
                continue;
            }
            // [WRITE / SC FENCE] an SC read must not read mo-before a
            // write po-sequenced before an earlier SC fence.
            let w_before_f = g
                .writes
                .iter()
                .copied()
                .filter(|&w| {
                    an.events[w].thread == an.events[f].thread
                        && an.events[w].seq < an.events[f].seq
                })
                .max_by_key(|&w| an.events[w].seq);
            if e.order == "SeqCst" {
                if let Some(w) = w_before_f {
                    require(out, w, "write before an SC fence");
                }
            }
            // [FENCE / FENCE] with an SC fence also po-before the read.
            if let Some(w) = w_before_f {
                let fenced_read = sc_fences.iter().any(|&f2| {
                    an.events[f2].thread == e.thread
                        && an.events[f2].seq < e.seq
                        && an.events[f].seq < an.events[f2].seq
                });
                if fenced_read {
                    require(out, w, "write fence-ordered before the read");
                }
            }
        }
    }
}

/// The observable outcome of a trace: for each worker thread (1-based,
/// in thread order) the sequence of values its reads observed (loads
/// and the read halves of RMWs, in program order).
pub fn outcome(events: &[TraceEvent]) -> Vec<Vec<u64>> {
    let nworkers = events.iter().map(|e| e.thread).max().unwrap_or(0) as usize;
    let mut per_thread = vec![Vec::new(); nworkers];
    let an = |e: &TraceEvent| match e.kind {
        TraceKind::Load => Some(e.value),
        TraceKind::Rmw => Some(e.old.unwrap_or(0)),
        _ => None,
    };
    for e in events {
        if e.thread == 0 {
            continue;
        }
        if let Some(v) = an(e) {
            per_thread[e.thread as usize - 1].push(v);
        }
    }
    per_thread
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn ev(
        kind: TraceKind,
        thread: u64,
        seq: u64,
        obj: u64,
        order: &'static str,
        value: u64,
        rf: Option<u64>,
        old: Option<u64>,
    ) -> TraceEvent {
        TraceEvent {
            kind,
            thread,
            seq,
            obj,
            order,
            access: match kind {
                TraceKind::Fence => "fence",
                _ if thread == 0 => "non-atomic",
                _ => "atomic",
            },
            value,
            rf,
            old,
        }
    }

    fn init(seq: u64, obj: u64) -> TraceEvent {
        ev(TraceKind::Store, 0, seq, obj, "Relaxed", 0, None, None)
    }

    #[test]
    fn accepts_a_release_acquire_handoff() {
        // T1: x=1 rlx; f=1 rel.   T2: f==1 acq; x==1 rlx.
        let t = vec![
            init(1, 10),
            init(2, 11),
            ev(TraceKind::Store, 1, 3, 10, "Relaxed", 1, None, None),
            ev(TraceKind::Store, 1, 4, 11, "Release", 1, None, None),
            ev(TraceKind::Load, 2, 5, 11, "Acquire", 1, Some(4), None),
            ev(TraceKind::Load, 2, 6, 10, "Relaxed", 1, Some(3), None),
        ];
        assert_eq!(check_trace(&t), vec![]);
        assert_eq!(outcome(&t), vec![vec![], vec![1, 1]]);
    }

    #[test]
    fn rejects_a_message_passing_violation() {
        // Same handoff, but the acquiring reader then reads the *init*
        // value of x — hidden by CoWR once the handoff synchronized.
        let t = vec![
            init(1, 10),
            init(2, 11),
            ev(TraceKind::Store, 1, 3, 10, "Relaxed", 1, None, None),
            ev(TraceKind::Store, 1, 4, 11, "Release", 1, None, None),
            ev(TraceKind::Load, 2, 5, 11, "Acquire", 1, Some(4), None),
            ev(TraceKind::Load, 2, 6, 10, "Relaxed", 0, Some(1), None),
        ];
        let v = check_trace(&t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "coherence");
    }

    #[test]
    fn relaxed_handoff_is_allowed_to_read_stale() {
        // Relaxed flag: no synchronization, stale read of x is fine.
        let t = vec![
            init(1, 10),
            init(2, 11),
            ev(TraceKind::Store, 1, 3, 10, "Relaxed", 1, None, None),
            ev(TraceKind::Store, 1, 4, 11, "Relaxed", 1, None, None),
            ev(TraceKind::Load, 2, 5, 11, "Relaxed", 1, Some(4), None),
            ev(TraceKind::Load, 2, 6, 10, "Relaxed", 0, Some(1), None),
        ];
        assert_eq!(check_trace(&t), vec![]);
    }

    #[test]
    fn fence_pair_synchronizes_a_relaxed_handoff() {
        // T1: x=1 rlx; fence rel; f=1 rlx.
        // T2: f==1 rlx; fence acq; x==0 rlx  → CoWR violation.
        let t = vec![
            init(1, 10),
            init(2, 11),
            ev(TraceKind::Store, 1, 3, 10, "Relaxed", 1, None, None),
            ev(TraceKind::Fence, 1, 4, FENCE_OBJ, "Release", 0, None, None),
            ev(TraceKind::Store, 1, 5, 11, "Relaxed", 1, None, None),
            ev(TraceKind::Load, 2, 6, 11, "Relaxed", 1, Some(5), None),
            ev(TraceKind::Fence, 2, 7, FENCE_OBJ, "Acquire", 0, None, None),
            ev(TraceKind::Load, 2, 8, 10, "Relaxed", 0, Some(1), None),
        ];
        let v = check_trace(&t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "coherence");
        // Without the acquire fence the same read is fine.
        let mut ok = t.clone();
        ok.remove(6);
        assert_eq!(check_trace(&ok), vec![]);
    }

    #[test]
    fn rejects_rf_value_mismatch_and_double_rmw() {
        let bad_value = vec![
            init(1, 10),
            ev(TraceKind::Store, 1, 2, 10, "Relaxed", 7, None, None),
            ev(TraceKind::Load, 2, 3, 10, "Relaxed", 8, Some(2), None),
        ];
        assert_eq!(check_trace(&bad_value)[0].rule, "rf");

        let double = vec![
            init(1, 10),
            ev(TraceKind::Rmw, 1, 2, 10, "Relaxed", 5, Some(1), Some(0)),
            ev(TraceKind::Rmw, 2, 3, 10, "Relaxed", 9, Some(1), Some(0)),
        ];
        assert!(check_trace(&double).iter().any(|v| v.rule == "rf"));
    }

    #[test]
    fn rejects_coherence_cycle_via_rmw_immediacy() {
        // Two RMWs chained off init, but a later read sees them in an
        // order contradicting the chain.
        let t = vec![
            init(1, 10),
            ev(TraceKind::Rmw, 1, 2, 10, "Relaxed", 5, Some(1), Some(0)),
            ev(TraceKind::Rmw, 2, 3, 10, "Relaxed", 9, Some(2), Some(5)),
            // T3 reads 9 then (hb-later, same thread) reads 5: CoRR
            // says 9 mo-before 5, but RMW order says 5 mo-before 9.
            ev(TraceKind::Load, 3, 4, 10, "Relaxed", 9, Some(3), None),
            ev(TraceKind::Load, 3, 5, 10, "Relaxed", 5, Some(2), None),
        ];
        let v = check_trace(&t);
        assert!(v.iter().any(|v| v.rule == "coherence"), "{v:?}");
    }

    #[test]
    fn rejects_sc_read_of_mo_hidden_store() {
        // Two SC stores (commit order = SC order), then an SC read of
        // the first: it is entailed mo-before the last SC write.
        let t = vec![
            init(1, 10),
            ev(TraceKind::Store, 1, 2, 10, "SeqCst", 1, None, None),
            ev(TraceKind::Store, 2, 3, 10, "SeqCst", 2, None, None),
            ev(TraceKind::Load, 3, 4, 10, "SeqCst", 1, Some(2), None),
        ];
        let v = check_trace(&t);
        assert!(v.iter().any(|v| v.rule == "sc"), "{v:?}");
        // A relaxed read of the same store is *not* an SC violation
        // (and not a coherence one either — no hb into the reader).
        let mut relaxed = t;
        relaxed[3].order = "Relaxed";
        assert_eq!(check_trace(&relaxed), vec![]);
    }

    #[test]
    fn rejects_structural_breakage() {
        let dup_seq = vec![init(1, 10), init(1, 11)];
        assert_eq!(check_trace(&dup_seq)[0].rule, "structural");

        let late_main = vec![
            init(1, 10),
            ev(TraceKind::Store, 1, 2, 10, "Relaxed", 1, None, None),
            init(3, 11),
        ];
        assert!(check_trace(&late_main)
            .iter()
            .any(|v| v.rule == "structural"));
    }
}
