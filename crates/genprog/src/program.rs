//! The generated-program IR and its seeded generator.
//!
//! A [`Program`] is a closed, schedule-deterministic description of a
//! small concurrent test over the atomic-op grammar: `threads` worker
//! threads, each a straight-line sequence of [`Op`]s over `locs`
//! shared atomic locations (plus optional mutex-guarded regions). A
//! program is a **pure function of its program seed** (`pseed`): the
//! same `pseed` produces byte-identical IR on every host, so
//! `gen:<pseed>` campaign targets inherit the workspace determinism
//! contract unchanged — executions are replayable from
//! `(pseed, seed, index)` alone.
//!
//! The grammar (ISSUE 9 tentpole):
//!
//! * 2–6 threads × 1–8 locations;
//! * loads, stores, fetch-add RMWs, compare-and-swaps, and fences;
//! * every C11 ordering that is legal for the op kind (loads never
//!   release, stores never acquire, CAS failure orderings never
//!   release — the same constraints `std::sync::atomic` enforces);
//! * optional mutex-guarded regions of straight-line ops.
//!
//! Every store-like op writes a **program-unique value** (a counter,
//! never 0 — 0 is the initialization value of every location), so a
//! reads-from edge in a trace identifies its source store by value as
//! well as by sequence number.

use c11tester::MemOrder;

/// One straight-line operation of a generated thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Atomic load of location `loc`.
    Load {
        /// Location index (`0..Program::locs`).
        loc: usize,
        /// Load ordering (never release-class).
        ord: MemOrder,
    },
    /// Atomic store of `value` to location `loc`.
    Store {
        /// Location index.
        loc: usize,
        /// Store ordering (never acquire-class).
        ord: MemOrder,
        /// Program-unique nonzero value written.
        value: u64,
    },
    /// `fetch_add(addend)` on location `loc`.
    Rmw {
        /// Location index.
        loc: usize,
        /// RMW ordering (any of the five).
        ord: MemOrder,
        /// Program-unique nonzero addend.
        addend: u64,
    },
    /// `compare_exchange(expected, new)` on location `loc`.
    Cas {
        /// Location index.
        loc: usize,
        /// Success ordering (any of the five).
        success: MemOrder,
        /// Failure ordering (never release-class).
        failure: MemOrder,
        /// Expected value (0 or some store value of this location).
        expected: u64,
        /// Program-unique nonzero value written on success.
        new: u64,
    },
    /// Thread fence (never relaxed — relaxed fences are no-ops).
    Fence {
        /// Fence ordering.
        ord: MemOrder,
    },
    /// A mutex-guarded region of straight-line ops (never nested).
    Region {
        /// Mutex index (`0..Program::mutexes`).
        mutex: usize,
        /// Ops performed while holding the mutex.
        ops: Vec<Op>,
    },
}

/// A generated concurrent program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// The program seed this IR was generated from.
    pub pseed: u64,
    /// Number of shared atomic locations (all initialized to 0).
    pub locs: usize,
    /// Number of mutexes.
    pub mutexes: usize,
    /// Per-thread op sequences (each runs on its own spawned thread).
    pub threads: Vec<Vec<Op>>,
}

/// The splitmix64 generator the program grammar draws from — the same
/// finalizer the strategy-mix assignment uses, so a `pseed` is the
/// only input.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw below `n` (modulo; fine for grammar choices).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Orderings legal for a load.
const LOAD_ORDERS: &[MemOrder] = &[MemOrder::Relaxed, MemOrder::Acquire, MemOrder::SeqCst];
/// Orderings legal for a store.
const STORE_ORDERS: &[MemOrder] = &[MemOrder::Relaxed, MemOrder::Release, MemOrder::SeqCst];
/// Orderings legal for an RMW / CAS success.
const RMW_ORDERS: &[MemOrder] = &[
    MemOrder::Relaxed,
    MemOrder::Acquire,
    MemOrder::Release,
    MemOrder::AcqRel,
    MemOrder::SeqCst,
];
/// Orderings legal for a fence (relaxed fences are no-ops).
const FENCE_ORDERS: &[MemOrder] = &[
    MemOrder::Acquire,
    MemOrder::Release,
    MemOrder::AcqRel,
    MemOrder::SeqCst,
];

/// Mutable generation state threaded through op construction.
struct GenState {
    rng: SplitMix64,
    /// Next program-unique store value.
    next_value: u64,
    /// Values stored (by any op) to each location so far, for CAS
    /// `expected` choices.
    loc_values: Vec<Vec<u64>>,
}

impl GenState {
    fn fresh_value(&mut self, loc: usize) -> u64 {
        let v = self.next_value;
        self.next_value += 1;
        self.loc_values[loc].push(v);
        v
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.rng.below(xs.len() as u64) as usize]
    }

    /// A CAS `expected` value: the location's init value 0 or one of
    /// the values some store writes to it.
    fn expected_for(&mut self, loc: usize) -> u64 {
        let known = &self.loc_values[loc];
        let n = known.len() as u64 + 1;
        match self.rng.below(n) {
            0 => 0,
            k => known[(k - 1) as usize],
        }
    }

    fn straight_op(&mut self, locs: usize) -> Op {
        let loc = self.rng.below(locs as u64) as usize;
        match self.rng.below(100) {
            0..=29 => Op::Store {
                loc,
                ord: self.pick(STORE_ORDERS),
                value: self.fresh_value(loc),
            },
            30..=59 => Op::Load {
                loc,
                ord: self.pick(LOAD_ORDERS),
            },
            60..=74 => Op::Rmw {
                loc,
                ord: self.pick(RMW_ORDERS),
                addend: self.fresh_value(loc),
            },
            75..=89 => {
                let expected = self.expected_for(loc);
                Op::Cas {
                    loc,
                    success: self.pick(RMW_ORDERS),
                    failure: self.pick(LOAD_ORDERS),
                    expected,
                    new: self.fresh_value(loc),
                }
            }
            _ => Op::Fence {
                ord: self.pick(FENCE_ORDERS),
            },
        }
    }
}

impl Program {
    /// Generates the full-grammar program for `pseed`: 2–6 threads,
    /// 1–8 locations, 1–8 ops per thread, optional mutex regions.
    pub fn generate(pseed: u64) -> Program {
        let mut st = GenState {
            rng: SplitMix64::new(pseed),
            next_value: 1,
            loc_values: Vec::new(),
        };
        let threads = 2 + st.rng.below(5) as usize;
        let locs = 1 + st.rng.below(8) as usize;
        st.loc_values = vec![Vec::new(); locs];
        // A quarter of programs get one mutex to guard regions with.
        let mutexes = usize::from(st.rng.below(4) == 0);
        let mut bodies = Vec::with_capacity(threads);
        for _ in 0..threads {
            let nops = 1 + st.rng.below(8) as usize;
            let mut ops = Vec::with_capacity(nops);
            for _ in 0..nops {
                if mutexes > 0 && st.rng.below(8) == 0 {
                    let inner = 1 + st.rng.below(2) as usize;
                    let body = (0..inner).map(|_| st.straight_op(locs)).collect();
                    ops.push(Op::Region {
                        mutex: 0,
                        ops: body,
                    });
                } else {
                    ops.push(st.straight_op(locs));
                }
            }
            bodies.push(ops);
        }
        Program {
            pseed,
            locs,
            mutexes,
            threads: bodies,
        }
    }

    /// Generates the small-scope program for `pseed`: 2–3 threads,
    /// 1–2 locations, ≤ 2 ops per thread (≤ 6 ops total), no mutexes
    /// — small enough for [`crate::enumerate::enumerate_outcomes`] to
    /// compute the full axiom-allowed outcome set.
    pub fn generate_tiny(pseed: u64) -> Program {
        let mut st = GenState {
            rng: SplitMix64::new(pseed ^ 0x7177_BADC_0FFE_E000),
            next_value: 1,
            loc_values: Vec::new(),
        };
        let threads = 2 + st.rng.below(2) as usize;
        let locs = 1 + st.rng.below(2) as usize;
        st.loc_values = vec![Vec::new(); locs];
        let per_thread = if threads == 3 { 2 } else { 3 };
        let mut bodies = Vec::with_capacity(threads);
        for _ in 0..threads {
            let nops = 1 + st.rng.below(per_thread) as usize;
            bodies.push((0..nops).map(|_| st.straight_op(locs)).collect());
        }
        Program {
            pseed,
            locs,
            mutexes: 0,
            threads: bodies,
        }
    }

    /// Total op count, counting region bodies (regions themselves
    /// contribute their lock/unlock on top when executed).
    pub fn total_ops(&self) -> usize {
        fn count(ops: &[Op]) -> usize {
            ops.iter()
                .map(|op| match op {
                    Op::Region { ops, .. } => count(ops),
                    _ => 1,
                })
                .sum()
        }
        self.threads.iter().map(|t| count(t)).sum()
    }

    /// Whether the small-scope enumerator can handle this program:
    /// ≤ 3 threads, ≤ 6 ops, no mutex regions.
    pub fn is_small_scope(&self) -> bool {
        self.threads.len() <= 3
            && self.total_ops() <= 6
            && self
                .threads
                .iter()
                .all(|t| t.iter().all(|op| !matches!(op, Op::Region { .. })))
    }

    /// Renders the program as stable, human-readable lines (one header
    /// line, then one line per op, region ops indented) — the form the
    /// `c11fuzz/v1` mismatch report embeds.
    pub fn render(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "gen:{} threads={} locs={} mutexes={}",
            self.pseed,
            self.threads.len(),
            self.locs,
            self.mutexes
        )];
        for (ix, ops) in self.threads.iter().enumerate() {
            lines.push(format!("T{}:", ix + 1));
            for op in ops {
                match op {
                    Op::Region { mutex, ops } => {
                        lines.push(format!("  lock m{mutex} {{"));
                        for inner in ops {
                            lines.push(format!("    {}", render_op(inner)));
                        }
                        lines.push("  }".to_string());
                    }
                    other => lines.push(format!("  {}", render_op(other))),
                }
            }
        }
        lines
    }
}

/// The ordering vocabulary of the trace layer (matches the core's
/// `order_name` so oracle, generator, and traces cannot drift).
pub fn order_name(ord: MemOrder) -> &'static str {
    match ord {
        MemOrder::Relaxed => "Relaxed",
        MemOrder::Acquire => "Acquire",
        MemOrder::Release => "Release",
        MemOrder::AcqRel => "AcqRel",
        MemOrder::SeqCst => "SeqCst",
    }
}

fn render_op(op: &Op) -> String {
    match op {
        Op::Load { loc, ord } => format!("load x{loc} {}", order_name(*ord)),
        Op::Store { loc, ord, value } => {
            format!("store x{loc} {} {value}", order_name(*ord))
        }
        Op::Rmw { loc, ord, addend } => {
            format!("fetch_add x{loc} {} {addend}", order_name(*ord))
        }
        Op::Cas {
            loc,
            success,
            failure,
            expected,
            new,
        } => format!(
            "cas x{loc} {}/{} {expected}->{new}",
            order_name(*success),
            order_name(*failure)
        ),
        Op::Fence { ord } => format!("fence {}", order_name(*ord)),
        Op::Region { .. } => unreachable!("regions are rendered by Program::render"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_pseed() {
        for pseed in 0..50 {
            assert_eq!(Program::generate(pseed), Program::generate(pseed));
            assert_eq!(Program::generate_tiny(pseed), Program::generate_tiny(pseed));
        }
        assert_ne!(Program::generate(1), Program::generate(2));
    }

    #[test]
    fn generated_programs_stay_inside_the_grammar_bounds() {
        for pseed in 0..200 {
            let p = Program::generate(pseed);
            assert!((2..=6).contains(&p.threads.len()), "pseed {pseed}");
            assert!((1..=8).contains(&p.locs), "pseed {pseed}");
            assert!(p.mutexes <= 1);
            for ops in &p.threads {
                assert!((1..=8).contains(&ops.len()));
                for op in ops {
                    check_op(op, &p);
                    if let Op::Region { mutex, ops } = op {
                        assert!(*mutex < p.mutexes, "region without a mutex");
                        assert!(!ops.is_empty() && ops.len() <= 2);
                        assert!(ops.iter().all(|o| !matches!(o, Op::Region { .. })));
                    }
                }
            }
        }
    }

    #[test]
    fn tiny_programs_fit_the_enumerator_scope() {
        for pseed in 0..200 {
            let p = Program::generate_tiny(pseed);
            assert!(p.is_small_scope(), "pseed {pseed}: {p:?}");
            assert!(p.threads.len() >= 2);
            assert!(p.locs <= 2);
        }
    }

    #[test]
    fn store_values_are_program_unique_and_nonzero() {
        for pseed in 0..100 {
            let p = Program::generate(pseed);
            let mut seen = std::collections::BTreeSet::new();
            let mut visit = |op: &Op| {
                let v = match op {
                    Op::Store { value, .. } => Some(*value),
                    Op::Rmw { addend, .. } => Some(*addend),
                    Op::Cas { new, .. } => Some(*new),
                    _ => None,
                };
                if let Some(v) = v {
                    assert_ne!(v, 0);
                    assert!(seen.insert(v), "duplicate value {v} in pseed {pseed}");
                }
            };
            for ops in &p.threads {
                for op in ops {
                    if let Op::Region { ops, .. } = op {
                        ops.iter().for_each(&mut visit);
                    } else {
                        visit(op);
                    }
                }
            }
        }
    }

    fn check_op(op: &Op, p: &Program) {
        match op {
            Op::Load { loc, ord } => {
                assert!(*loc < p.locs);
                assert!(LOAD_ORDERS.contains(ord));
            }
            Op::Store { loc, ord, .. } => {
                assert!(*loc < p.locs);
                assert!(STORE_ORDERS.contains(ord));
            }
            Op::Rmw { loc, .. } | Op::Cas { loc, .. } => {
                assert!(*loc < p.locs);
                if let Op::Cas { failure, .. } = op {
                    assert!(LOAD_ORDERS.contains(failure));
                }
            }
            Op::Fence { ord } => assert!(FENCE_ORDERS.contains(ord)),
            Op::Region { ops, .. } => ops.iter().for_each(|o| check_op(o, p)),
        }
    }

    #[test]
    fn render_is_stable() {
        let p = Program::generate(3);
        let lines = p.render();
        assert!(lines[0].starts_with("gen:3 threads="));
        assert_eq!(p.render(), lines);
    }
}
