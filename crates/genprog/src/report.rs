//! The `c11fuzz/v1` mismatch report.
//!
//! When a sweep finds a trace the oracle rejects — or a tiny-program
//! outcome outside the enumerated axiom-allowed set — the fuzzer
//! writes one JSON report carrying everything needed to replay the
//! failure offline: the `(pseed, seed, epoch, index)` replay key, the
//! violations, the rendered program, and its shrunk form. Hand-rolled
//! JSON like every other report writer in the workspace (no serde).

use crate::oracle::Violation;

/// One fuzz mismatch, serializable as `c11fuzz/v1`.
#[derive(Clone, Debug)]
pub struct MismatchReport {
    /// Program seed (regenerates the program).
    pub pseed: u64,
    /// Model seed of the failing sweep.
    pub seed: u64,
    /// Trace epoch (always 0 for single-sweep runs).
    pub epoch: u64,
    /// Execution index within the sweep.
    pub index: u64,
    /// Which check failed: `oracle` (axiom violation in a trace) or
    /// `enumerator` (observed outcome outside the allowed set).
    pub scope: &'static str,
    /// The oracle violations (empty for `enumerator` mismatches).
    pub violations: Vec<Violation>,
    /// For `enumerator` mismatches: the forbidden observed outcome.
    pub outcome: Option<Vec<Vec<u64>>>,
    /// The rendered failing program.
    pub program: Vec<String>,
    /// The rendered shrunk program (equal to `program` when no
    /// reduction step kept the failure).
    pub shrunk: Vec<String>,
}

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn string_array(lines: &[String]) -> String {
    let items: Vec<String> = lines.iter().map(|l| format!("\"{}\"", esc(l))).collect();
    format!("[{}]", items.join(","))
}

impl MismatchReport {
    /// Renders the report as one `c11fuzz/v1` JSON object.
    pub fn to_json(&self) -> String {
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "{{\"rule\":\"{}\",\"detail\":\"{}\"}}",
                    esc(v.rule),
                    esc(&v.detail)
                )
            })
            .collect();
        let outcome = match &self.outcome {
            None => "null".to_string(),
            Some(threads) => {
                let ts: Vec<String> = threads
                    .iter()
                    .map(|vals| {
                        let vs: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
                        format!("[{}]", vs.join(","))
                    })
                    .collect();
                format!("[{}]", ts.join(","))
            }
        };
        format!(
            concat!(
                "{{\"schema\":\"c11fuzz/v1\",",
                "\"pseed\":{},",
                "\"replay\":{{\"seed\":{},\"epoch\":{},\"index\":{}}},",
                "\"scope\":\"{}\",",
                "\"violations\":[{}],",
                "\"outcome\":{},",
                "\"program\":{},",
                "\"shrunk\":{}}}"
            ),
            self.pseed,
            self.seed,
            self.epoch,
            self.index,
            self.scope,
            violations.join(","),
            outcome,
            string_array(&self.program),
            string_array(&self.shrunk),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_with_escapes_and_replay_key() {
        let r = MismatchReport {
            pseed: 42,
            seed: 7,
            epoch: 0,
            index: 3,
            scope: "oracle",
            violations: vec![Violation {
                rule: "coherence",
                detail: "cycle \"x\"".to_string(),
            }],
            outcome: Some(vec![vec![1, 0], vec![]]),
            program: vec!["gen:42 threads=2 locs=1 mutexes=0".to_string()],
            shrunk: vec!["T1:".to_string()],
        };
        let json = r.to_json();
        assert!(json.starts_with("{\"schema\":\"c11fuzz/v1\",\"pseed\":42,"));
        assert!(json.contains("\"replay\":{\"seed\":7,\"epoch\":0,\"index\":3}"));
        assert!(json.contains("cycle \\\"x\\\""));
        assert!(json.contains("\"outcome\":[[1,0],[]]"));
        assert!(json.ends_with("\"shrunk\":[\"T1:\"]}"));
    }
}
