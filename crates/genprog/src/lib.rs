//! # c11tester-genprog
//!
//! Generated-program fuzzing for the c11tester engine (ISSUE 9): a
//! seeded generator over the atomic-op grammar, an **independent**
//! C11-axiom oracle that re-validates committed execution traces
//! without sharing any code with the engine's clock vectors or
//! mo-graph, a small-scope exhaustive outcome enumerator, and a
//! deterministic grammar shrinker.
//!
//! The pieces compose into one differential-testing loop
//! ([`fuzz_pseed`]): generate a program from a `pseed`, sweep it
//! through the model with schedule tracing on, re-check every trace
//! against the axioms, and — for tiny programs — check that every
//! observed outcome lies in the exhaustively enumerated allowed set.
//! A disagreement shrinks to a minimal reproducer and serializes as a
//! `c11fuzz/v1` [`MismatchReport`] keyed by `(pseed, seed, epoch,
//! index)`.
//!
//! Programs are pure functions of their `pseed`, so `gen:<pseed>`
//! campaign targets (registered in the campaign crate's target table)
//! inherit the workspace determinism contract: canonical campaign
//! JSON over a `gen` target is byte-identical for any worker count,
//! in-process or isolated.

#![warn(missing_docs)]

pub mod enumerate;
pub mod fuzz;
pub mod oracle;
pub mod program;
pub mod report;
pub mod run;
pub mod shrink;

pub use enumerate::{enumerate_outcomes, Outcome};
pub use fuzz::{fuzz_pseed, FuzzParams};
pub use oracle::{check_trace, outcome, Violation};
pub use program::{order_name, Op, Program, SplitMix64};
pub use report::MismatchReport;
pub use run::{run_generated, run_program, sweep, SweepCapture};
pub use shrink::shrink;
