//! Deterministic grammar reduction of a failing program.
//!
//! [`shrink`] greedily minimizes a program while a caller-supplied
//! predicate keeps reproducing the failure. The passes are pure
//! grammar operations applied in a fixed order (no randomness), so a
//! shrink run is replayable from the same inputs:
//!
//! 1. drop a whole thread;
//! 2. flatten a mutex region into its body;
//! 3. drop a single op.
//!
//! Each round restarts from the first pass after any success and the
//! loop stops at a fixpoint — the result still fails but no single
//! reduction step keeps it failing.

use crate::program::{Op, Program};

/// Minimizes `p` under `failing` (which must return `true` for `p`
/// itself — the caller established the failure before shrinking).
pub fn shrink(p: &Program, mut failing: impl FnMut(&Program) -> bool) -> Program {
    let mut cur = p.clone();
    loop {
        let mut reduced = false;
        for cand in candidates(&cur) {
            if failing(&cand) {
                cur = cand;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return cur;
        }
    }
}

/// All single-step reductions of `p`, most aggressive first.
fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // Pass 1: drop a thread (keep at least one).
    if p.threads.len() > 1 {
        for t in 0..p.threads.len() {
            let mut q = p.clone();
            q.threads.remove(t);
            out.push(q);
        }
    }
    // Pass 2: flatten a region into its body.
    for (t, ops) in p.threads.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            if let Op::Region { ops: inner, .. } = op {
                let mut q = p.clone();
                q.threads[t].splice(i..=i, inner.clone());
                out.push(q);
            }
        }
    }
    // Pass 3: drop one op (keep each thread nonempty so the program
    // stays inside the grammar).
    for (t, ops) in p.threads.iter().enumerate() {
        for i in 0..ops.len() {
            if ops.len() > 1 {
                let mut q = p.clone();
                q.threads[t].remove(i);
                out.push(q);
            }
            if let Op::Region { ops: inner, .. } = &ops[i] {
                for j in 0..inner.len() {
                    if inner.len() > 1 {
                        let mut q = p.clone();
                        if let Op::Region { ops, .. } = &mut q.threads[t][i] {
                            ops.remove(j);
                        }
                        out.push(q);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11tester::MemOrder;

    fn store(loc: usize, value: u64) -> Op {
        Op::Store {
            loc,
            ord: MemOrder::Relaxed,
            value,
        }
    }

    #[test]
    fn shrinks_to_the_smallest_program_keeping_the_marker() {
        // Failure predicate: "some thread still stores 7".
        let p = Program {
            pseed: 9,
            locs: 2,
            mutexes: 1,
            threads: vec![
                vec![store(0, 1), store(1, 7), store(0, 2)],
                vec![Op::Region {
                    mutex: 0,
                    ops: vec![store(1, 3)],
                }],
                vec![store(0, 4)],
            ],
        };
        let has_7 = |q: &Program| {
            q.threads.iter().flatten().any(|op| match op {
                Op::Store { value, .. } => *value == 7,
                Op::Region { ops, .. } => ops
                    .iter()
                    .any(|o| matches!(o, Op::Store { value, .. } if *value == 7)),
                _ => false,
            })
        };
        assert!(has_7(&p));
        let small = shrink(&p, has_7);
        assert_eq!(small.threads.len(), 1);
        assert_eq!(small.threads[0], vec![store(1, 7)]);
        assert_eq!(small.pseed, 9, "shrinking keeps the replay pseed");
    }

    #[test]
    fn shrink_is_a_fixpoint_under_an_always_true_predicate() {
        let p = Program::generate(4);
        let small = shrink(&p, |_| true);
        assert_eq!(small.threads.len(), 1);
        assert_eq!(small.total_ops(), 1);
        // Deterministic: same inputs, same minimum.
        assert_eq!(shrink(&p, |_| true), small);
    }
}
