//! Deterministic-contract-safe observability for the c11tester-rs
//! workspace: phase profiling, a campaign metrics registry with
//! `c11metrics/v1` + Chrome-trace export, and structured schedule
//! traces.
//!
//! This crate is a dependency-free leaf **below** the core model
//! crate, so every type here is built from plain `u64`/`&'static str`
//! fields — core converts its own `ThreadId`/`ObjId`/`MemOrder`
//! values at the recording sites. The cardinal rule, enforced by the
//! layers above: telemetry is *diagnostic*, never *behavioral*.
//! Nothing recorded here may influence scheduling, read-from choice,
//! or any other model decision, and nothing here may enter canonical
//! campaign JSON — the determinism contract (byte-identical reports
//! across worker counts and isolation modes) must hold with telemetry
//! enabled or disabled.

#![warn(missing_docs)]

pub mod chrome;
pub mod coverage;
pub mod metrics;
pub mod phase;
pub mod trace;

pub use chrome::chrome_trace;
pub use coverage::{coverage_enabled, set_coverage, ExecCoverage};
pub use metrics::{
    CampaignMetrics, EpochMetric, ForkHealth, GraphMetrics, MetricsMeta, WorkerMetrics,
};
pub use phase::{
    phase_start, profiling_enabled, set_profiling, Phase, PhaseProfile, PhaseTimer, PHASE_COUNT,
};
pub use trace::{
    event_jsonl, set_tracing, tracing_enabled, CaptureSink, JsonlSink, MemorySink, StderrSink,
    TraceEvent, TraceKey, TraceKind, TraceSink, FENCE_OBJ,
};
