//! Per-execution behavior-coverage signatures.
//!
//! A campaign that only reports races found and execs/sec says nothing
//! about *what* the checker explored. [`ExecCoverage`] is the raw
//! per-execution signature captured at the core commit points while
//! coverage collection is enabled ([`set_coverage`]): the distinct
//! reads-from edges (store-thread → load-thread per object), the
//! distinct modification-order adjacencies, and a coarse interleaving
//! signature (an FNV-1a hash over the execution's preemption points).
//! The layers above fold these signatures into a mergeable
//! `CoverageMap` (in `c11tester-race`) keyed by campaign execution
//! index.
//!
//! Like every other telemetry surface, coverage is **diagnostic, never
//! behavioral**: collection is gated on one relaxed atomic (default
//! off), the signature never influences scheduling or read-from
//! choice, and nothing here enters default canonical campaign JSON.
//! The edge keys use thread *indices* and object ids, both of which
//! are pure functions of `(seed, execution index)` under the model's
//! determinism contract — so the aggregated map is byte-stable across
//! worker counts and isolation modes.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

/// Global coverage-collection gate (one relaxed atomic, mirroring
/// [`crate::set_profiling`] / [`crate::set_tracing`]).
static COVERAGE: AtomicBool = AtomicBool::new(false);

/// Enables or disables behavior-coverage collection process-wide.
/// Sampled once per execution (at reset), not per event.
pub fn set_coverage(enabled: bool) {
    COVERAGE.store(enabled, Ordering::Relaxed);
}

/// Whether behavior-coverage collection is enabled.
pub fn coverage_enabled() -> bool {
    COVERAGE.load(Ordering::Relaxed)
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Mixes one `u64` into an FNV-1a running hash, byte by byte.
#[inline]
pub fn fnv1a_mix(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One execution's behavior signature, captured at the commit points
/// of the core execution while [`coverage_enabled`] holds.
///
/// Empty (`collected == false`, no allocation beyond the struct) when
/// collection is disabled — the default — so the hot path costs one
/// boolean test per commit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecCoverage {
    /// Whether this execution ran with collection enabled. A map layer
    /// must ignore signatures with `collected == false` (an empty set
    /// from a collecting execution is meaningful; from a
    /// non-collecting one it is not).
    pub collected: bool,
    /// Distinct reads-from edges `(obj, store thread, load thread)`
    /// committed by this execution.
    pub rf_edges: BTreeSet<(u64, u64, u64)>,
    /// Distinct modification-order adjacencies
    /// `(obj, from-store thread, to-store thread)` added by this
    /// execution.
    pub mo_edges: BTreeSet<(u64, u64, u64)>,
    /// Coarse interleaving signature: FNV-1a over the execution's
    /// preemption points (the `(sequence number, incoming thread)`
    /// pairs at every thread switch).
    pub interleaving_hash: u64,
}

impl ExecCoverage {
    /// A signature primed for a collecting execution.
    pub fn collecting() -> Self {
        ExecCoverage {
            collected: true,
            interleaving_hash: FNV_OFFSET,
            ..ExecCoverage::default()
        }
    }

    /// Rewinds to the start-of-execution state, retaining set capacity
    /// where the standard library allows; `collect` re-arms or disarms
    /// the signature for the next execution.
    pub fn reset(&mut self, collect: bool) {
        self.collected = collect;
        self.rf_edges.clear();
        self.mo_edges.clear();
        self.interleaving_hash = if collect { FNV_OFFSET } else { 0 };
    }

    /// Records a committed reads-from edge.
    #[inline]
    pub fn record_rf(&mut self, obj: u64, store_thread: u64, load_thread: u64) {
        self.rf_edges.insert((obj, store_thread, load_thread));
    }

    /// Records a modification-order adjacency.
    #[inline]
    pub fn record_mo(&mut self, obj: u64, from_thread: u64, to_thread: u64) {
        self.mo_edges.insert((obj, from_thread, to_thread));
    }

    /// Folds one preemption point (a thread switch at global sequence
    /// number `seq` onto `thread`) into the interleaving hash.
    #[inline]
    pub fn record_switch(&mut self, seq: u64, thread: u64) {
        self.interleaving_hash = fnv1a_mix(fnv1a_mix(self.interleaving_hash, seq), thread);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_defaults_off_and_toggles() {
        // Other tests in this crate do not touch the gate.
        assert!(!coverage_enabled());
        set_coverage(true);
        assert!(coverage_enabled());
        set_coverage(false);
        assert!(!coverage_enabled());
    }

    #[test]
    fn signature_records_deduplicated_edges() {
        let mut c = ExecCoverage::collecting();
        assert!(c.collected);
        c.record_rf(3, 0, 1);
        c.record_rf(3, 0, 1);
        c.record_rf(3, 1, 0);
        c.record_mo(3, 0, 1);
        assert_eq!(c.rf_edges.len(), 2);
        assert_eq!(c.mo_edges.len(), 1);
    }

    #[test]
    fn interleaving_hash_is_order_sensitive_and_deterministic() {
        let mut a = ExecCoverage::collecting();
        a.record_switch(4, 1);
        a.record_switch(9, 0);
        let mut b = ExecCoverage::collecting();
        b.record_switch(4, 1);
        b.record_switch(9, 0);
        assert_eq!(a.interleaving_hash, b.interleaving_hash);
        let mut c = ExecCoverage::collecting();
        c.record_switch(9, 0);
        c.record_switch(4, 1);
        assert_ne!(a.interleaving_hash, c.interleaving_hash);
    }

    #[test]
    fn reset_rearms_or_disarms() {
        let mut c = ExecCoverage::collecting();
        c.record_rf(1, 0, 1);
        c.record_switch(2, 1);
        c.reset(true);
        assert!(c.collected);
        assert!(c.rf_edges.is_empty());
        assert_eq!(
            c.interleaving_hash,
            ExecCoverage::collecting().interleaving_hash
        );
        c.reset(false);
        assert_eq!(c, ExecCoverage::default());
    }
}
