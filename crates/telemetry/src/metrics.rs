//! Campaign-level metrics registry and the `c11metrics/v1` exporter.
//!
//! Diagnostic aggregates collected while a campaign runs: per-worker
//! utilization, fork-server child health, and the adaptive epoch
//! timeline. Like `StrategyLedger`, every aggregate merges
//! **order-independently** ([`CampaignMetrics::absorb`]), so the
//! numbers are stable no matter which worker or batch reports first.
//! None of this ever enters canonical campaign JSON — metrics are
//! timing-dependent and would break byte-identity; they are emitted
//! only via `c11campaign --metrics-out` (see `docs/METRICS.md`).

use crate::phase::{Phase, PhaseProfile};

/// Minimal RFC 8259 string escaping for the hand-rolled emitters
/// (same subset as the campaign wire module; telemetry sits below it
/// in the crate graph, so the helper is duplicated rather than
/// imported).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// One campaign worker's share of the load.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Worker ordinal (the shard offset).
    pub worker: u64,
    /// Executions this worker completed.
    pub executions: u64,
    /// Wall time the worker spent running executions (vs. idle at the
    /// stop barrier).
    pub busy_nanos: u64,
    /// Model threads provisioned by re-dispatching onto an already-live
    /// pooled worker thread (0 with the thread pool disabled). The
    /// "recycled" side of the provisioning split, mirroring
    /// `AllocStats`' fresh/recycled executions.
    pub pooled_dispatches: u64,
    /// Model threads provisioned by creating a new OS thread: every
    /// spawn with the pool disabled, only pool growth with it enabled —
    /// so a warmed-up pooled worker's count stays flat.
    pub fresh_spawns: u64,
}

/// Fork-server child health counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ForkHealth {
    /// Child processes spawned (first spawn of each batch included).
    pub spawns: u64,
    /// Respawns after a child died mid-batch (crash triage path).
    pub respawns: u64,
    /// Children killed by the per-execution timeout.
    pub timeout_kills: u64,
    /// Protocol frames received from children.
    pub frames: u64,
    /// Total parent-side inter-frame latency.
    pub frame_rtt_nanos_total: u64,
    /// Worst single inter-frame latency.
    pub frame_rtt_nanos_max: u64,
}

impl ForkHealth {
    /// Order-independent merge.
    pub fn absorb(&mut self, other: &ForkHealth) {
        self.spawns += other.spawns;
        self.respawns += other.respawns;
        self.timeout_kills += other.timeout_kills;
        self.frames += other.frames;
        self.frame_rtt_nanos_total = self
            .frame_rtt_nanos_total
            .saturating_add(other.frame_rtt_nanos_total);
        self.frame_rtt_nanos_max = self.frame_rtt_nanos_max.max(other.frame_rtt_nanos_max);
    }

    /// Mean inter-frame latency, when any frame was timed.
    pub fn frame_rtt_mean_nanos(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.frame_rtt_nanos_total as f64 / self.frames as f64
        }
    }
}

/// Campaign-wide mo-graph maintenance diagnostics: the telemetry-side
/// mirror of the core crate's `MoGraphPerfStats` (telemetry sits below
/// core in the crate graph, so the counters are carried as plain
/// numbers here). Incremental-topological-order fast-path hit rates
/// and `--memory-limit` compaction bookkeeping — diagnostic only,
/// never part of canonical campaign JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphMetrics {
    /// Edge insertions that violated the maintained topological order
    /// and triggered a bounded local reorder.
    pub order_reorders: u64,
    /// Total nodes re-indexed across those reorders.
    pub reorder_nodes: u64,
    /// Reachability queries answered negatively by the order-index
    /// compare alone (clock-vector comparison skipped).
    pub reach_fast_negative: u64,
    /// Reachability queries that fell through to the clock-vector test.
    pub reach_cv_checks: u64,
    /// Tombstone compaction passes run (`--memory-limit`).
    pub compactions: u64,
    /// Pruned nodes physically evicted from the arena by compaction.
    pub compacted_nodes: u64,
    /// High-water mark of arena-resident mo-graph nodes in any single
    /// execution; bounded under `--memory-limit`.
    pub peak_live_nodes: u64,
}

impl GraphMetrics {
    /// Order-independent merge: counters sum, the high-water mark
    /// takes the max.
    pub fn absorb(&mut self, other: &GraphMetrics) {
        self.order_reorders += other.order_reorders;
        self.reorder_nodes += other.reorder_nodes;
        self.reach_fast_negative += other.reach_fast_negative;
        self.reach_cv_checks += other.reach_cv_checks;
        self.compactions += other.compactions;
        self.compacted_nodes += other.compacted_nodes;
        self.peak_live_nodes = self.peak_live_nodes.max(other.peak_live_nodes);
    }
}

/// One adaptive epoch on the campaign timeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpochMetric {
    /// Epoch ordinal.
    pub epoch: u64,
    /// First global execution index of the epoch.
    pub start_index: u64,
    /// Executions the epoch actually ran.
    pub executions: u64,
    /// Wall time of the epoch.
    pub wall_nanos: u64,
    /// Strategy mix spec the epoch ran under.
    pub mix: String,
}

/// Identity of the campaign a metrics document describes (assembled
/// by the CLI; not part of the merged aggregates).
#[derive(Clone, Debug, Default)]
pub struct MetricsMeta {
    /// Target workload name.
    pub target: String,
    /// Campaign base seed.
    pub seed: u64,
    /// Memory-model policy name.
    pub policy: String,
    /// Configured worker count.
    pub workers: u64,
    /// Whether the campaign ran fork-isolated.
    pub isolated: bool,
}

/// The full diagnostic aggregate of one campaign run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignMetrics {
    /// Campaign-wide per-phase time (sum over every execution).
    pub phase: PhaseProfile,
    /// Mo-graph maintenance diagnostics (sum over every execution;
    /// `peak_live_nodes` is the per-execution max).
    pub graph: GraphMetrics,
    /// Per-worker load; sorted by worker id at emission.
    pub workers: Vec<WorkerMetrics>,
    /// Fork-server health (all-zero for in-process campaigns).
    pub fork: ForkHealth,
    /// Adaptive epoch timeline (empty for flat campaigns).
    pub epochs: Vec<EpochMetric>,
    /// Total executions.
    pub executions: u64,
    /// Campaign wall time.
    pub wall_nanos: u64,
}

impl CampaignMetrics {
    /// Order-independent merge: worker rows are folded by id, fork
    /// counters summed, epoch rows appended (re-sorted at emission),
    /// wall time taken as the max (merged shards ran concurrently).
    pub fn absorb(&mut self, other: &CampaignMetrics) {
        self.phase.absorb(&other.phase);
        self.graph.absorb(&other.graph);
        for w in &other.workers {
            match self.workers.iter_mut().find(|m| m.worker == w.worker) {
                Some(mine) => {
                    mine.executions += w.executions;
                    mine.busy_nanos = mine.busy_nanos.saturating_add(w.busy_nanos);
                    mine.pooled_dispatches += w.pooled_dispatches;
                    mine.fresh_spawns += w.fresh_spawns;
                }
                None => self.workers.push(*w),
            }
        }
        self.fork.absorb(&other.fork);
        self.epochs.extend(other.epochs.iter().cloned());
        self.executions += other.executions;
        self.wall_nanos = self.wall_nanos.max(other.wall_nanos);
    }

    /// Relative spread of executions across workers:
    /// `(max − min) / mean`, or 0 with fewer than two workers.
    pub fn shard_imbalance(&self) -> f64 {
        if self.workers.len() < 2 {
            return 0.0;
        }
        let counts: Vec<u64> = self.workers.iter().map(|w| w.executions).collect();
        let max = *counts.iter().max().expect("non-empty");
        let min = *counts.iter().min().expect("non-empty");
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            (max - min) as f64 / mean
        }
    }

    /// Serializes to the `c11metrics/v1` schema (field-by-field
    /// reference in `docs/METRICS.md`). Hand-rolled deterministic
    /// field order, like every emitter in the workspace.
    pub fn to_json(&self, meta: &MetricsMeta) -> String {
        let mut workers = self.workers.clone();
        workers.sort_by_key(|w| w.worker);
        let mut epochs = self.epochs.clone();
        epochs.sort_by_key(|e| e.epoch);

        let wall_secs = self.wall_nanos as f64 / 1e9;
        let execs_per_sec = if wall_secs > 0.0 {
            self.executions as f64 / wall_secs
        } else {
            0.0
        };

        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":\"c11metrics/v1\"");
        out.push_str(&format!(
            ",\"target\":\"{}\",\"base_seed\":{},\"policy\":\"{}\",\"workers\":{},\"isolated\":{}",
            esc(&meta.target),
            meta.seed,
            esc(&meta.policy),
            meta.workers,
            meta.isolated,
        ));
        out.push_str(&format!(
            ",\"wall_nanos\":{},\"executions\":{},\"execs_per_sec\":{}",
            self.wall_nanos,
            self.executions,
            json_f64(execs_per_sec),
        ));
        out.push_str(",\"phase\":{");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"nanos\":{},\"calls\":{}}}",
                phase.name(),
                self.phase.nanos(*phase),
                self.phase.calls(*phase),
            ));
        }
        out.push_str(&format!(",\"total_nanos\":{}}}", self.phase.total_nanos()));
        out.push_str(&format!(
            ",\"mograph\":{{\"order_reorders\":{},\"reorder_nodes\":{},\
             \"reach_fast_negative\":{},\"reach_cv_checks\":{},\"compactions\":{},\
             \"compacted_nodes\":{},\"peak_live_nodes\":{}}}",
            self.graph.order_reorders,
            self.graph.reorder_nodes,
            self.graph.reach_fast_negative,
            self.graph.reach_cv_checks,
            self.graph.compactions,
            self.graph.compacted_nodes,
            self.graph.peak_live_nodes,
        ));
        out.push_str(",\"worker_utilization\":[");
        for (i, w) in workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let utilization = if self.wall_nanos > 0 {
                w.busy_nanos as f64 / self.wall_nanos as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{{\"worker\":{},\"executions\":{},\"busy_nanos\":{},\"utilization\":{},\
                 \"pooled_dispatches\":{},\"fresh_spawns\":{}}}",
                w.worker,
                w.executions,
                w.busy_nanos,
                json_f64(utilization),
                w.pooled_dispatches,
                w.fresh_spawns,
            ));
        }
        out.push(']');
        out.push_str(&format!(
            ",\"shard_imbalance\":{}",
            json_f64(self.shard_imbalance())
        ));
        out.push_str(&format!(
            ",\"fork_server\":{{\"spawns\":{},\"respawns\":{},\"timeout_kills\":{},\"frames\":{},\
             \"frame_rtt_mean_nanos\":{},\"frame_rtt_max_nanos\":{}}}",
            self.fork.spawns,
            self.fork.respawns,
            self.fork.timeout_kills,
            self.fork.frames,
            json_f64(self.fork.frame_rtt_mean_nanos()),
            self.fork.frame_rtt_nanos_max,
        ));
        out.push_str(",\"epochs\":[");
        for (i, e) in epochs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"epoch\":{},\"start_index\":{},\"executions\":{},\"wall_nanos\":{},\"mix\":\"{}\"}}",
                e.epoch,
                e.start_index,
                e.executions,
                e.wall_nanos,
                esc(&e.mix),
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(worker: u64, executions: u64, busy_nanos: u64) -> WorkerMetrics {
        WorkerMetrics {
            worker,
            executions,
            busy_nanos,
            ..WorkerMetrics::default()
        }
    }

    #[test]
    fn absorb_is_order_independent() {
        let mut a = CampaignMetrics {
            workers: vec![worker(0, 10, 100)],
            executions: 10,
            wall_nanos: 500,
            ..CampaignMetrics::default()
        };
        a.phase.record(Phase::Scheduling, 7);
        a.fork.spawns = 1;
        let mut b = CampaignMetrics {
            workers: vec![worker(0, 5, 50), worker(1, 8, 80)],
            executions: 13,
            wall_nanos: 400,
            ..CampaignMetrics::default()
        };
        b.fork.respawns = 2;
        b.epochs.push(EpochMetric {
            epoch: 0,
            start_index: 0,
            executions: 13,
            wall_nanos: 400,
            mix: "random".into(),
        });

        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        // Same content regardless of merge order (workers may differ
        // in vec order; to_json sorts).
        let meta = MetricsMeta::default();
        assert_eq!(ab.to_json(&meta), ba.to_json(&meta));
        assert_eq!(ab.executions, 23);
        assert_eq!(ab.wall_nanos, 500);
        assert_eq!(ab.fork.spawns, 1);
        assert_eq!(ab.fork.respawns, 2);
        let w0 = ab.workers.iter().find(|w| w.worker == 0).expect("w0");
        assert_eq!(w0.executions, 15);
    }

    #[test]
    fn worker_fold_sums_thread_provisioning_counters() {
        let mut a = CampaignMetrics {
            workers: vec![WorkerMetrics {
                worker: 0,
                executions: 10,
                busy_nanos: 100,
                pooled_dispatches: 30,
                fresh_spawns: 3,
            }],
            executions: 10,
            ..CampaignMetrics::default()
        };
        let b = CampaignMetrics {
            workers: vec![WorkerMetrics {
                worker: 0,
                executions: 5,
                busy_nanos: 50,
                pooled_dispatches: 15,
                fresh_spawns: 0,
            }],
            executions: 5,
            ..CampaignMetrics::default()
        };
        a.absorb(&b);
        let w0 = &a.workers[0];
        assert_eq!(w0.pooled_dispatches, 45);
        assert_eq!(w0.fresh_spawns, 3);
        let json = a.to_json(&MetricsMeta::default());
        assert!(json.contains("\"pooled_dispatches\":45,\"fresh_spawns\":3"));
    }

    #[test]
    fn shard_imbalance_measures_spread() {
        let mut m = CampaignMetrics::default();
        assert_eq!(m.shard_imbalance(), 0.0);
        m.workers = vec![worker(0, 10, 0), worker(1, 10, 0)];
        assert_eq!(m.shard_imbalance(), 0.0);
        m.workers = vec![worker(0, 15, 0), worker(1, 5, 0)];
        assert!((m.shard_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_has_the_v1_shape() {
        let mut m = CampaignMetrics {
            workers: vec![worker(1, 5, 50), worker(0, 10, 100)],
            executions: 15,
            wall_nanos: 1_000,
            ..CampaignMetrics::default()
        };
        m.phase.record(Phase::Prune, 3);
        let meta = MetricsMeta {
            target: "rwlock-buggy".into(),
            seed: 0xC11,
            policy: "c11tester".into(),
            workers: 2,
            isolated: false,
        };
        let json = m.to_json(&meta);
        assert!(json.starts_with("{\"schema\":\"c11metrics/v1\""));
        assert!(json.contains("\"target\":\"rwlock-buggy\""));
        assert!(json.contains("\"prune\":{\"nanos\":3,\"calls\":1}"));
        assert!(json.contains("\"total_nanos\":3"));
        // Workers emitted sorted by id even if absorbed out of order.
        let w0 = json.find("\"worker\":0").expect("worker 0");
        let w1 = json.find("\"worker\":1").expect("worker 1");
        assert!(w0 < w1);
        assert!(json.contains("\"fork_server\":{\"spawns\":0"));
        assert!(json.ends_with("\"epochs\":[]}"));
    }

    #[test]
    fn mograph_block_is_emitted_and_merges_order_independently() {
        let mut a = CampaignMetrics {
            graph: GraphMetrics {
                order_reorders: 2,
                reorder_nodes: 9,
                reach_fast_negative: 100,
                reach_cv_checks: 40,
                compactions: 1,
                compacted_nodes: 30,
                peak_live_nodes: 64,
            },
            ..CampaignMetrics::default()
        };
        let b = CampaignMetrics {
            graph: GraphMetrics {
                reach_fast_negative: 50,
                peak_live_nodes: 48,
                ..GraphMetrics::default()
            },
            ..CampaignMetrics::default()
        };
        a.absorb(&b);
        assert_eq!(a.graph.reach_fast_negative, 150);
        assert_eq!(a.graph.peak_live_nodes, 64, "peak maxes, not sums");
        let json = a.to_json(&MetricsMeta::default());
        assert!(json.contains(
            "\"mograph\":{\"order_reorders\":2,\"reorder_nodes\":9,\
             \"reach_fast_negative\":150,\"reach_cv_checks\":40,\"compactions\":1,\
             \"compacted_nodes\":30,\"peak_live_nodes\":64}"
        ));
    }

    #[test]
    fn fork_health_rtt_mean() {
        let mut h = ForkHealth::default();
        assert_eq!(h.frame_rtt_mean_nanos(), 0.0);
        h.frames = 4;
        h.frame_rtt_nanos_total = 100;
        h.frame_rtt_nanos_max = 40;
        assert!((h.frame_rtt_mean_nanos() - 25.0).abs() < 1e-12);
        let mut other = ForkHealth {
            frames: 1,
            frame_rtt_nanos_total: 60,
            frame_rtt_nanos_max: 60,
            timeout_kills: 1,
            ..ForkHealth::default()
        };
        other.absorb(&h);
        assert_eq!(other.frames, 5);
        assert_eq!(other.frame_rtt_nanos_max, 60);
        assert_eq!(other.timeout_kills, 1);
    }

    #[test]
    fn escaping_covers_the_rfc_subset() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
