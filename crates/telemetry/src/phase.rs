//! Per-execution phase profiling.
//!
//! The engine's hot loop decomposes into a handful of recurring
//! phases (scheduling, read-from candidate selection, mo-graph
//! maintenance, race detection, pruning). A [`PhaseProfile`]
//! accumulates wall-clock nanoseconds and call counts per phase; the
//! profile rides next to the behavioral `ExecStats` counters but —
//! like the allocator diagnostics — is **excluded from stats equality
//! and default canonical JSON**, because timing is nondeterministic
//! and the determinism contract only covers behavior.
//!
//! Profiling is globally gated by an [`AtomicBool`]: when disabled
//! (the default) a profiling site costs one relaxed load and no
//! `Instant` syscall, keeping the disabled-telemetry overhead within
//! the ≤2% bench budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// The recurring phases of one model-checked execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Picking the next runnable thread at a schedule point.
    Scheduling,
    /// Read-from candidate enumeration + feasibility filtering.
    ReadFrom,
    /// Modification-order graph maintenance (edge insertion, cycle
    /// bookkeeping).
    MoGraph,
    /// Data-race detection (vector-clock checks on each access).
    RaceDetect,
    /// Dead-prefix pruning passes over the committed history.
    Prune,
}

/// Number of [`Phase`] variants (array dimension of a profile).
pub const PHASE_COUNT: usize = 5;

impl Phase {
    /// All phases, in canonical emission order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Scheduling,
        Phase::ReadFrom,
        Phase::MoGraph,
        Phase::RaceDetect,
        Phase::Prune,
    ];

    /// Stable snake_case name used in `c11metrics/v1` JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Scheduling => "scheduling",
            Phase::ReadFrom => "read_from",
            Phase::MoGraph => "mo_graph",
            Phase::RaceDetect => "race_detect",
            Phase::Prune => "prune",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// Accumulated per-phase wall time and call counts.
///
/// `Copy` and array-backed so it can live inside `ExecStats` without
/// touching the recycled hot path's allocation-free guarantee.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    nanos: [u64; PHASE_COUNT],
    calls: [u64; PHASE_COUNT],
}

impl PhaseProfile {
    /// Adds one timed interval to `phase`.
    pub fn record(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.idx()] = self.nanos[phase.idx()].saturating_add(nanos);
        self.calls[phase.idx()] += 1;
    }

    /// Folds another profile in (order-independent, like every other
    /// aggregate in the workspace).
    pub fn absorb(&mut self, other: &PhaseProfile) {
        for i in 0..PHASE_COUNT {
            self.nanos[i] = self.nanos[i].saturating_add(other.nanos[i]);
            self.calls[i] += other.calls[i];
        }
    }

    /// Accumulated nanoseconds in `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.idx()]
    }

    /// Number of timed intervals recorded for `phase`.
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase.idx()]
    }

    /// Sum of nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// True when nothing has been recorded (profiling was off).
    pub fn is_empty(&self) -> bool {
        *self == PhaseProfile::default()
    }

    /// Clears all counters (execution-state recycling).
    pub fn reset(&mut self) {
        *self = PhaseProfile::default();
    }

    /// Raw `(nanos, calls)` arrays, indexed by [`Phase::ALL`] order —
    /// for wire serialization.
    pub fn raw(&self) -> ([u64; PHASE_COUNT], [u64; PHASE_COUNT]) {
        (self.nanos, self.calls)
    }

    /// Rebuilds a profile from its [`raw`](Self::raw) arrays — for
    /// wire deserialization.
    pub fn from_raw(nanos: [u64; PHASE_COUNT], calls: [u64; PHASE_COUNT]) -> PhaseProfile {
        PhaseProfile { nanos, calls }
    }
}

/// Global profiling gate. Off by default; flipped on by
/// `c11campaign --metrics-out` (and the hidden worker mode's
/// `--profile-phases` flag).
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Enables or disables phase profiling process-wide.
pub fn set_profiling(enabled: bool) {
    PROFILING.store(enabled, Ordering::Relaxed);
}

/// Whether phase profiling is currently enabled.
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// A running phase timer; stop it into a profile with
/// [`PhaseTimer::stop`].
#[derive(Debug)]
pub struct PhaseTimer {
    phase: Phase,
    start: Instant,
}

impl PhaseTimer {
    /// Ends the interval and records it into `profile`.
    pub fn stop(self, profile: &mut PhaseProfile) {
        let nanos = self.start.elapsed().as_nanos();
        profile.record(self.phase, u64::try_from(nanos).unwrap_or(u64::MAX));
    }
}

/// Starts a timer for `phase`, or returns `None` when profiling is
/// disabled (one relaxed atomic load; no clock read).
#[inline]
pub fn phase_start(phase: Phase) -> Option<PhaseTimer> {
    if !profiling_enabled() {
        return None;
    }
    Some(PhaseTimer {
        phase,
        start: Instant::now(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_absorb_accumulate() {
        let mut a = PhaseProfile::default();
        a.record(Phase::Scheduling, 10);
        a.record(Phase::Scheduling, 5);
        a.record(Phase::Prune, 7);
        assert_eq!(a.nanos(Phase::Scheduling), 15);
        assert_eq!(a.calls(Phase::Scheduling), 2);
        assert_eq!(a.total_nanos(), 22);

        let mut b = PhaseProfile::default();
        b.record(Phase::Prune, 3);
        b.absorb(&a);
        assert_eq!(b.nanos(Phase::Prune), 10);
        assert_eq!(b.calls(Phase::Prune), 2);
        assert_eq!(b.total_nanos(), 25);
        assert!(!b.is_empty());
        b.reset();
        assert!(b.is_empty());
    }

    #[test]
    fn raw_round_trips() {
        let mut p = PhaseProfile::default();
        p.record(Phase::MoGraph, 42);
        p.record(Phase::RaceDetect, 9);
        let (nanos, calls) = p.raw();
        assert_eq!(PhaseProfile::from_raw(nanos, calls), p);
    }

    #[test]
    fn timers_respect_the_global_gate() {
        set_profiling(false);
        assert!(phase_start(Phase::Scheduling).is_none());
        set_profiling(true);
        let mut profile = PhaseProfile::default();
        let timer = phase_start(Phase::ReadFrom).expect("enabled");
        timer.stop(&mut profile);
        assert_eq!(profile.calls(Phase::ReadFrom), 1);
        set_profiling(false);
    }
}
