//! Structured schedule traces.
//!
//! Replaces the ad-hoc `C11TESTER_TRACE` `eprintln!` path: the core
//! execution buffers one [`TraceEvent`] per committed event (store,
//! load, RMW) and the model layer drains the buffer into a
//! [`TraceSink`] after each execution, keyed by `(seed, epoch,
//! index)` — the same coordinates that make an execution replayable.
//! A single interleaving can therefore be dumped as JSONL, diffed
//! against a replay, or attached to a race report for provenance.
//!
//! The types here are deliberately plain (`u64`, `&'static str`): the
//! telemetry crate sits *below* the core model crate, so it cannot
//! name `ThreadId`/`ObjId`/`MemOrder` — core converts at the
//! recording site.

use std::sync::atomic::{AtomicBool, Ordering};

/// The replay coordinates of one execution: `seed` and global `index`
/// pin the interleaving; `epoch` disambiguates adaptive campaigns
/// (0 for flat campaigns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceKey {
    /// Campaign base seed.
    pub seed: u64,
    /// Adaptive epoch ordinal (0 when the campaign is not epoched).
    pub epoch: u64,
    /// Global execution index.
    pub index: u64,
}

/// Committed-event kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// An atomic / non-atomic / volatile store.
    Store,
    /// An atomic load.
    Load,
    /// A read-modify-write (both halves in one event).
    Rmw,
    /// A (non-relaxed) thread fence. Carries no object: `obj` is
    /// [`FENCE_OBJ`], `value` is 0, `rf`/`old` are `None`.
    Fence,
}

/// Sentinel `obj` value of [`TraceKind::Fence`] events (fences target
/// no location).
pub const FENCE_OBJ: u64 = u64::MAX;

impl TraceKind {
    /// Stable name used in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Store => "store",
            TraceKind::Load => "load",
            TraceKind::Rmw => "rmw",
            TraceKind::Fence => "fence",
        }
    }
}

/// One committed event of an execution's interleaving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: TraceKind,
    /// Committing thread id.
    pub thread: u64,
    /// Global sequence number of the event (the store half for RMWs).
    pub seq: u64,
    /// Target object id.
    pub obj: u64,
    /// Memory ordering name (e.g. `"SeqCst"`).
    pub order: &'static str,
    /// Access kind name (`"atomic"`, `"non-atomic"`, `"volatile"`).
    pub access: &'static str,
    /// Value stored / loaded / written by the RMW.
    pub value: u64,
    /// Sequence number of the store read from (loads and RMWs).
    pub rf: Option<u64>,
    /// Value read by the RMW before writing.
    pub old: Option<u64>,
}

/// Encodes one event as a JSONL line carrying its replay key.
pub fn event_jsonl(key: TraceKey, e: &TraceEvent) -> String {
    let mut line = format!(
        "{{\"seed\":{},\"epoch\":{},\"index\":{},\"kind\":\"{}\",\"thread\":{},\"seq\":{},\
         \"obj\":{},\"order\":\"{}\",\"access\":\"{}\",\"value\":{}",
        key.seed,
        key.epoch,
        key.index,
        e.kind.name(),
        e.thread,
        e.seq,
        e.obj,
        e.order,
        e.access,
        e.value,
    );
    match e.rf {
        Some(rf) => line.push_str(&format!(",\"rf\":{rf}")),
        None => line.push_str(",\"rf\":null"),
    }
    match e.old {
        Some(old) => line.push_str(&format!(",\"old\":{old}")),
        None => line.push_str(",\"old\":null"),
    }
    line.push('}');
    line
}

/// Receives the committed-event sequence of each traced execution.
pub trait TraceSink: Send {
    /// Records one execution's full event sequence.
    fn record(&mut self, key: TraceKey, events: &[TraceEvent]);
}

/// The default sink: JSONL to stderr (the behavior `C11TESTER_TRACE`
/// aliases to).
#[derive(Debug, Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn record(&mut self, key: TraceKey, events: &[TraceEvent]) {
        use std::io::Write;
        let stderr = std::io::stderr();
        let mut out = std::io::BufWriter::new(stderr.lock());
        for e in events {
            let _ = writeln!(out, "{}", event_jsonl(key, e));
        }
    }
}

/// An in-memory sink for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Every recorded `(key, events)` pair, in record order.
    pub records: Vec<(TraceKey, Vec<TraceEvent>)>,
}

impl TraceSink for MemorySink {
    fn record(&mut self, key: TraceKey, events: &[TraceEvent]) {
        self.records.push((key, events.to_vec()));
    }
}

/// The shared buffer behind a [`CaptureSink`]: recorded
/// `(key, events)` pairs in record order.
type SharedRecords = std::sync::Arc<std::sync::Mutex<Vec<(TraceKey, Vec<TraceEvent>)>>>;

/// A cloneable [`TraceSink`] whose buffer is shared between the clone
/// handed to the model (trace-sink installation takes the sink by
/// `Box`) and the clone the caller keeps to read the capture back out
/// afterwards. This is the capture primitive behind race forensics
/// replays and the generated-program fuzz oracle.
#[derive(Clone, Debug, Default)]
pub struct CaptureSink {
    records: SharedRecords,
}

impl CaptureSink {
    /// Creates an empty shared sink.
    pub fn new() -> Self {
        CaptureSink::default()
    }

    /// Drains everything recorded so far.
    pub fn take(&self) -> Vec<(TraceKey, Vec<TraceEvent>)> {
        let mut guard = self
            .records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut *guard)
    }
}

impl TraceSink for CaptureSink {
    fn record(&mut self, key: TraceKey, events: &[TraceEvent]) {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((key, events.to_vec()));
    }
}

/// A sink that appends JSONL lines to a growable string buffer
/// (useful for writing a trace file at campaign end).
#[derive(Debug, Default)]
pub struct JsonlSink {
    /// The accumulated JSONL text.
    pub text: String,
}

impl TraceSink for JsonlSink {
    fn record(&mut self, key: TraceKey, events: &[TraceEvent]) {
        for e in events {
            self.text.push_str(&event_jsonl(key, e));
            self.text.push('\n');
        }
    }
}

/// Global tracing gate, OR-ed with the `C11TESTER_TRACE` environment
/// variable by the core execution. Lets embedders enable buffering
/// without touching the process environment.
static TRACING: AtomicBool = AtomicBool::new(false);

/// Enables or disables schedule-trace buffering process-wide.
pub fn set_tracing(enabled: bool) {
    TRACING.store(enabled, Ordering::Relaxed);
}

/// Whether programmatic trace buffering is enabled.
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent {
            kind: TraceKind::Rmw,
            thread: 2,
            seq: 17,
            obj: 3,
            order: "AcqRel",
            access: "atomic",
            value: 9,
            rf: Some(12),
            old: Some(8),
        }
    }

    #[test]
    fn jsonl_encodes_key_and_edges() {
        let key = TraceKey {
            seed: 0xC11,
            epoch: 1,
            index: 42,
        };
        let line = event_jsonl(key, &sample());
        assert!(line.starts_with("{\"seed\":3089,\"epoch\":1,\"index\":42,"));
        assert!(line.contains("\"kind\":\"rmw\""));
        assert!(line.contains("\"rf\":12"));
        assert!(line.contains("\"old\":8"));
        let store = TraceEvent {
            kind: TraceKind::Store,
            rf: None,
            old: None,
            ..sample()
        };
        let line = event_jsonl(key, &store);
        assert!(line.contains("\"rf\":null"));
        assert!(line.ends_with("\"old\":null}"));
    }

    #[test]
    fn memory_sink_captures_records() {
        let mut sink = MemorySink::default();
        let key = TraceKey::default();
        sink.record(key, &[sample()]);
        assert_eq!(sink.records.len(), 1);
        assert_eq!(sink.records[0].1[0], sample());
    }

    #[test]
    fn jsonl_sink_appends_lines() {
        let mut sink = JsonlSink::default();
        sink.record(TraceKey::default(), &[sample(), sample()]);
        assert_eq!(sink.text.lines().count(), 2);
    }
}
