//! Chrome trace-event export (`--metrics-format chrome`).
//!
//! Re-renders a [`CampaignMetrics`] aggregate as a JSON array of
//! Chrome trace events — the format `chrome://tracing` and Perfetto
//! load directly — for flamegraph-style inspection of where a whole
//! campaign spent its time. The timeline is **synthetic**: campaign
//! metrics are totals, not an event log, so phases are laid out as
//! consecutive slices whose durations are the accumulated per-phase
//! nanoseconds, workers as one busy-span each, and epochs end-to-end
//! in epoch order. Relative widths are meaningful; absolute
//! timestamps are not.

use crate::metrics::{esc, CampaignMetrics, MetricsMeta};
use crate::phase::Phase;

/// Track (tid) layout of the synthetic timeline.
const TID_PHASES: u64 = 0;
const TID_EPOCHS: u64 = 1;
const TID_WORKER_BASE: u64 = 100;

fn metadata(name: &str, tid: u64, value: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
        name,
        tid,
        esc(value)
    )
}

fn slice(name: &str, tid: u64, ts_us: u64, dur_us: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
        esc(name),
        tid,
        ts_us,
        dur_us,
        args
    )
}

/// Renders the metrics aggregate as a well-formed Chrome trace-event
/// array.
pub fn chrome_trace(metrics: &CampaignMetrics, meta: &MetricsMeta) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(metadata(
        "process_name",
        TID_PHASES,
        &format!("c11campaign {}", meta.target),
    ));
    events.push(metadata("thread_name", TID_PHASES, "engine phases"));

    // Phase slices, consecutive on one track.
    let mut ts = 0u64;
    for phase in Phase::ALL {
        let dur = metrics.phase.nanos(phase) / 1_000;
        let args = format!("\"calls\":{}", metrics.phase.calls(phase));
        events.push(slice(phase.name(), TID_PHASES, ts, dur, &args));
        ts += dur;
    }

    // One busy-span per worker.
    let mut workers = metrics.workers.clone();
    workers.sort_by_key(|w| w.worker);
    for w in &workers {
        let tid = TID_WORKER_BASE + w.worker;
        events.push(metadata(
            "thread_name",
            tid,
            &format!("worker {}", w.worker),
        ));
        let args = format!("\"executions\":{}", w.executions);
        events.push(slice(
            &format!("worker {}", w.worker),
            tid,
            0,
            w.busy_nanos / 1_000,
            &args,
        ));
    }

    // Epochs end-to-end in epoch order.
    if !metrics.epochs.is_empty() {
        events.push(metadata("thread_name", TID_EPOCHS, "adaptive epochs"));
        let mut epochs = metrics.epochs.clone();
        epochs.sort_by_key(|e| e.epoch);
        let mut ts = 0u64;
        for e in &epochs {
            let dur = e.wall_nanos / 1_000;
            let args = format!(
                "\"mix\":\"{}\",\"start_index\":{},\"executions\":{}",
                esc(&e.mix),
                e.start_index,
                e.executions
            );
            events.push(slice(
                &format!("epoch {}", e.epoch),
                TID_EPOCHS,
                ts,
                dur,
                &args,
            ));
            ts += dur;
        }
    }

    let mut out = String::with_capacity(events.iter().map(String::len).sum::<usize>() + 64);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(e);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{EpochMetric, WorkerMetrics};

    #[test]
    fn trace_is_a_well_formed_event_array() {
        let mut m = CampaignMetrics {
            workers: vec![WorkerMetrics {
                worker: 0,
                executions: 10,
                busy_nanos: 2_000_000,
                ..WorkerMetrics::default()
            }],
            executions: 10,
            wall_nanos: 3_000_000,
            ..CampaignMetrics::default()
        };
        m.phase.record(Phase::Scheduling, 1_500_000);
        m.epochs.push(EpochMetric {
            epoch: 0,
            start_index: 0,
            executions: 10,
            wall_nanos: 3_000_000,
            mix: "random".into(),
        });
        let meta = MetricsMeta {
            target: "dekker-fences".into(),
            ..MetricsMeta::default()
        };
        let json = chrome_trace(&m, &meta);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"scheduling\""));
        assert!(json.contains("\"dur\":1500"));
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"name\":\"epoch 0\""));
        // Every phase appears even with zero duration.
        for phase in Phase::ALL {
            assert!(json.contains(&format!("\"name\":\"{}\"", phase.name())));
        }
    }
}
