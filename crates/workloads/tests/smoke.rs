//! Smoke tests: every workload terminates under the model, the seeded
//! bugs fire under the C11Tester policy at healthy rates, the fixed
//! variants stay clean, and the §8.1 policy separation holds.

use c11tester::{Config, Model, Policy};
use c11tester_workloads::{apps, ds, AppBench, DsBench};

fn model(policy: Policy, seed: u64) -> Model {
    Model::new(Config::for_policy(policy).with_seed(seed))
}

#[test]
fn all_ds_benchmarks_terminate() {
    for bench in DsBench::all() {
        let mut m = model(Policy::C11Tester, 1000);
        for _ in 0..5 {
            let report = m.run(|| bench.run());
            assert!(
                report.failure.is_none()
                    || matches!(report.failure, Some(c11tester::Failure::Panic(_))),
                "{}: unexpected outcome {report}",
                bench.name()
            );
        }
    }
}

#[test]
fn all_apps_terminate() {
    for app in AppBench::all() {
        let mut m = model(Policy::C11Tester, 2000);
        let report = m.run(|| app.run_default());
        assert!(
            report.failure.is_none(),
            "{}: unexpected failure {report}",
            app.name()
        );
        assert!(
            report.stats.atomic_ops() > 0,
            "{} ran no atomics",
            app.name()
        );
    }
}

#[test]
fn seqlock_bug_detected_only_by_full_fragment() {
    // §8.1: C11Tester detects the injected seqlock bug; tsan11 and
    // tsan11rec miss it (their executions keep hb ∪ sc ∪ rf ∪ mo
    // acyclic and their RMWs over-synchronize).
    let mut full = model(Policy::C11Tester, 77);
    let report = full.check(300, ds::seqlock::run_buggy);
    assert!(
        report.executions_with_bug > 0,
        "C11Tester must detect the seqlock bug: {report}"
    );

    for policy in [Policy::Tsan11Rec, Policy::Tsan11] {
        let mut m = model(policy, 77);
        let report = m.check(300, ds::seqlock::run_buggy);
        assert_eq!(
            report.executions_with_bug, 0,
            "{policy} should miss the seqlock bug: {report}"
        );
    }
}

#[test]
fn seqlock_fixed_is_clean() {
    let mut m = model(Policy::C11Tester, 78);
    let report = m.check(200, ds::seqlock::run_fixed);
    assert_eq!(report.executions_with_bug, 0, "{report}");
}

#[test]
fn rwlock_bug_detected_only_by_full_fragment() {
    let mut full = model(Policy::C11Tester, 79);
    let report = full.check(200, ds::rwlock_buggy::run_buggy);
    assert!(
        report.executions_with_race > 0,
        "C11Tester must detect the rwlock race: {report}"
    );

    for policy in [Policy::Tsan11Rec, Policy::Tsan11] {
        let mut m = model(policy, 79);
        let report = m.check(200, ds::rwlock_buggy::run_buggy);
        assert_eq!(
            report.executions_with_race, 0,
            "{policy} should miss the rwlock race: {report}"
        );
    }
}

#[test]
fn rwlock_fixed_is_clean() {
    let mut m = model(Policy::C11Tester, 80);
    let report = m.check(200, ds::rwlock_buggy::run_fixed);
    assert_eq!(report.executions_with_bug, 0, "{report}");
}

#[test]
fn chase_lev_race_found_only_by_c11tester() {
    // Table 2: "Tsan11 and tsan11rec did not detect races in
    // chase-lev-deque, but C11Tester did."
    let mut full = model(Policy::C11Tester, 81);
    let report = full.check(300, ds::chase_lev::run);
    assert!(
        report.executions_with_race > 0,
        "C11Tester must find the chase-lev race: {report}"
    );
    for policy in [Policy::Tsan11Rec, Policy::Tsan11] {
        let mut m = model(policy, 81);
        let report = m.check(300, ds::chase_lev::run);
        assert_eq!(
            report.executions_with_race, 0,
            "{policy} should miss the chase-lev race: {report}"
        );
    }
}

#[test]
fn ms_queue_race_found_by_everyone() {
    // Table 2: all three tools detect the ms-queue race at 100%.
    for policy in Policy::all() {
        let mut m = model(policy, 82);
        let report = m.check(50, ds::ms_queue::run);
        assert!(
            report.race_detection_rate() > 0.9,
            "{policy} should detect ms-queue nearly always: {report}"
        );
    }
}

#[test]
fn barrier_and_locks_race_under_full_fragment() {
    for bench in [
        DsBench::Barrier,
        DsBench::LinuxRwLocks,
        DsBench::McsLock,
        DsBench::MpmcQueue,
    ] {
        let mut m = model(Policy::C11Tester, 83);
        let report = m.check(100, || bench.run());
        assert!(
            report.executions_with_race > 0,
            "{} should race under C11Tester: {report}",
            bench.name()
        );
    }
}

#[test]
fn dekker_without_weak_fence_is_detected_by_all_policies() {
    for policy in Policy::all() {
        let mut m = model(policy, 84);
        let report = m.check(150, ds::dekker::run);
        assert!(
            report.executions_with_race > 0,
            "{policy} should be able to catch the dekker race: {report}"
        );
    }
}

#[test]
fn silo_invariant_depends_on_volatile_handling() {
    // §8.2 Silo: invariant violations with volatiles-as-relaxed; gone
    // when volatiles are handled as acquire/release.
    let cfg = Config::for_policy(Policy::C11Tester).with_seed(85);
    let mut relaxed = Model::new(cfg.clone());
    let report = relaxed.check(150, || {
        apps::silo::run(apps::silo::SiloConfig::default());
    });
    assert!(
        report.executions_with_bug > 0,
        "relaxed volatiles must expose the Silo invariant violation: {report}"
    );

    let fixed_cfg =
        cfg.with_volatile_orders(c11tester::MemOrder::Acquire, c11tester::MemOrder::Release);
    let mut acqrel = Model::new(fixed_cfg);
    let report = acqrel.check(150, || {
        apps::silo::run(apps::silo::SiloConfig::default());
    });
    assert_eq!(
        report.failures.len(),
        0,
        "acquire/release volatiles must fix Silo: {report}"
    );
}

#[test]
fn mabain_lost_drain_bug_fires() {
    let mut m = model(Policy::C11Tester, 86);
    let report = m.check(150, || {
        apps::mabain::run(apps::mabain::MabainConfig::default());
    });
    assert!(
        report
            .failures
            .iter()
            .any(|(_, f)| matches!(f, c11tester::Failure::Panic(msg) if msg.contains("lost"))),
        "the lost-drain assertion should fire: {report}"
    );
    assert!(
        report.executions_with_race > 0,
        "the jobs_done counter race should be detected: {report}"
    );
}

#[test]
fn iris_and_gdax_report_races() {
    let mut m = model(Policy::C11Tester, 87);
    let report = m.check(60, || {
        apps::iris::run(apps::iris::IrisConfig::default());
    });
    assert!(report.executions_with_race > 0, "iris: {report}");

    let mut m = model(Policy::C11Tester, 88);
    let report = m.check(60, || {
        apps::gdax::run(apps::gdax::GdaxConfig::default());
    });
    assert!(report.executions_with_race > 0, "gdax: {report}");
}

#[test]
fn jsbench_variants_are_clean_and_normal_heavy() {
    let v = c11tester_workloads::apps::jsbench::variants();
    assert_eq!(v.len(), 25);
    let mut m = model(Policy::C11Tester, 89);
    let report = m.run(|| {
        c11tester_workloads::apps::jsbench::run(v[0]);
    });
    assert!(!report.found_bug(), "{report}");
    assert!(
        report.stats.normal_accesses > report.stats.atomic_ops(),
        "jsbench must be dominated by normal accesses: {:?}",
        report.stats
    );
}
