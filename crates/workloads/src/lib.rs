//! # c11tester-workloads
//!
//! The benchmark programs of the C11Tester evaluation (paper §8),
//! ported to the `c11tester` model API:
//!
//! * [`ds`] — the CDSChecker data-structure suite of Table 2 (barrier,
//!   chase-lev-deque, dekker-fences, linuxrwlocks, mcs-lock,
//!   mpmc-queue, ms-queue) plus the §8.1 injected-bug seqlock and
//!   reader-writer lock;
//! * [`apps`] — simulations of the five applications of Table 1 (Silo,
//!   GDAX, Mabain, Iris, JSBench) preserving each one's concurrency
//!   skeleton, op mix, and reported bug.
//!
//! Every benchmark is a plain function run inside
//! [`c11tester::Model::run`]; the `c11tester-bench` crate drives them
//! to regenerate the paper's tables and figures.

#![warn(missing_docs)]

pub mod apps;
pub mod ds;

pub use apps::AppBench;
pub use ds::DsBench;
