//! Michael–Scott lock-free queue (CDSChecker benchmark `ms-queue`).
//!
//! Nodes come from a preallocated pool; `next` pointers are node
//! indices. The seeded bug is the classic *publish-then-initialize*
//! mistake: the enqueuer links the node into the queue **before**
//! writing its (non-atomic) value, so a fast dequeuer reads the value
//! while the enqueuer writes it. This race fires on essentially every
//! interleaving, which is why Table 2 reports 100% detection for all
//! three tools.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::SharedArray;
use std::sync::Arc;

const NONE: u32 = u32::MAX;
const POOL: usize = 8;

/// The queue over a fixed node pool.
#[derive(Debug)]
pub struct MsQueue {
    next: Vec<AtomicU32>,
    value: SharedArray<u64>,
    head: AtomicU32,
    tail: AtomicU32,
    alloc: AtomicU32,
}

impl MsQueue {
    /// Creates the queue with a dummy node at index 0.
    pub fn new() -> Self {
        MsQueue::with_pool(POOL)
    }

    /// Creates the queue over a pool of `pool` nodes (index 0 is the
    /// dummy, so at most `pool - 1` values can ever be enqueued).
    pub fn with_pool(pool: usize) -> Self {
        MsQueue {
            next: (0..pool)
                .map(|i| AtomicU32::named(format!("msq.next{i}"), NONE))
                .collect(),
            value: SharedArray::named("msq.value", pool, 0),
            head: AtomicU32::named("msq.head", 0),
            tail: AtomicU32::named("msq.tail", 0),
            alloc: AtomicU32::named("msq.alloc", 1),
        }
    }

    /// Enqueues `v` (with the seeded publish-before-init bug).
    pub fn push(&self, v: u64) {
        let n = self.alloc.fetch_add(1, Ordering::AcqRel);
        assert!((n as usize) < self.next.len(), "node pool exhausted");
        self.next[n as usize].store(NONE, Ordering::Relaxed);
        loop {
            let t = self.tail.load(Ordering::Acquire);
            let tn = self.next[t as usize].load(Ordering::Acquire);
            if tn != NONE {
                let _ = self
                    .tail
                    .compare_exchange(t, tn, Ordering::AcqRel, Ordering::Relaxed);
                continue;
            }
            if self.next[t as usize]
                .compare_exchange(NONE, n, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // Bug: the node is reachable *now*, but the value write
                // happens after publication.
                self.value.set(n as usize, v);
                let _ = self
                    .tail
                    .compare_exchange(t, n, Ordering::AcqRel, Ordering::Relaxed);
                return;
            }
            c11tester::thread::yield_now();
        }
    }

    /// Dequeues a value if available.
    pub fn pop(&self) -> Option<u64> {
        loop {
            let h = self.head.load(Ordering::Acquire);
            let hn = self.next[h as usize].load(Ordering::Acquire);
            if hn == NONE {
                return None;
            }
            let v = self.value.get(hn as usize); // races with push's init
            if self
                .head
                .compare_exchange(h, hn, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(v);
            }
            c11tester::thread::yield_now();
        }
    }
}

impl Default for MsQueue {
    fn default() -> Self {
        MsQueue::new()
    }
}

/// Benchmark body: one enqueuer, one dequeuer.
pub fn run() {
    run_n(2);
}

/// Scaled-up body for the `graph` bench group: many more nodes flow
/// through the queue, so the `next`-pointer and head/tail histories
/// (and with them the mo-graph) grow far past the litmus scale.
pub fn run_large() {
    run_n(12);
}

/// Parameterized body: one enqueuer pushing `items` values, one
/// dequeuer popping them all. The pool never shrinks below the
/// default so `run_n(2)` is the exact default benchmark (same object
/// allocation, hence byte-identical canonical output).
pub fn run_n(items: u32) {
    let q = Arc::new(MsQueue::with_pool((items as usize + 2).max(POOL)));
    let q2 = Arc::clone(&q);
    let consumer = c11tester::thread::spawn(move || {
        let mut got = 0;
        while got < items {
            if q2.pop().is_some() {
                got += 1;
            } else {
                c11tester::thread::yield_now();
            }
        }
    });
    for i in 0..items {
        q.push(7 + 2 * u64::from(i));
    }
    consumer.join();
}
