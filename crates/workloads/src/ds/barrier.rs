//! Sense-reversing spinning barrier (CDSChecker benchmark `barrier`).
//!
//! The seeded bug: the last arriver publishes the new sense with a
//! **relaxed** store and waiters spin with **relaxed** loads (the
//! correct protocol needs release/acquire), so data written before the
//! barrier is not ordered before reads after it — a data race.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::Shared;
use std::sync::Arc;

/// A two-phase sense barrier for `n` threads.
#[derive(Debug)]
pub struct Barrier {
    count: AtomicU32,
    sense: AtomicU32,
    n: u32,
}

impl Barrier {
    /// Creates a barrier for `n` participants.
    pub fn new(n: u32) -> Self {
        Barrier {
            count: AtomicU32::named("barrier.count", 0),
            sense: AtomicU32::named("barrier.sense", 0),
            n,
        }
    }

    /// Waits for all participants; `local_sense` alternates per phase.
    pub fn wait(&self, local_sense: u32) {
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            // Bug: should be Release.
            self.sense.store(local_sense, Ordering::Relaxed);
        } else {
            // Bug: should be Acquire.
            while self.sense.load(Ordering::Relaxed) != local_sense {
                c11tester::thread::yield_now();
            }
        }
    }
}

/// Benchmark body: a producer fills data before the barrier; a consumer
/// reads it after.
pub fn run() {
    let barrier = Arc::new(Barrier::new(2));
    let payload = Arc::new(Shared::named("barrier.payload", 0u64));

    let (b2, p2) = (Arc::clone(&barrier), Arc::clone(&payload));
    let producer = c11tester::thread::spawn(move || {
        p2.set(42);
        b2.wait(1);
    });

    barrier.wait(1);
    let v = payload.get(); // races with the producer's write
    assert!(v == 0 || v == 42, "impossible payload {v}");
    producer.join();
}
