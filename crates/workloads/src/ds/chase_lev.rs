//! Chase-Lev work-stealing deque (CDSChecker benchmark
//! `chase-lev-deque`, from Lê et al.'s published C11 implementation,
//! which contains a known ordering bug).
//!
//! Our seeded bug keys on the steal CAS: the thief advances `top` with
//! a **relaxed** compare-exchange (the correct code needs seq_cst /
//! acq_rel). The owner observes the advanced `top`, concludes the slot
//! is free, and reuses it for a new push — but without the CAS
//! synchronization the thief's in-flight read of the slot races with
//! the owner's reuse write.
//!
//! This is the benchmark where the paper reports that *only* C11Tester
//! finds the race (Table 2): the tsan-family's strengthened RMWs make
//! the buggy CAS synchronize anyway.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::SharedArray;
use std::sync::Arc;

const CAP: usize = 4;

/// The deque state shared between owner and thief.
#[derive(Debug)]
pub struct Deque {
    top: AtomicU32,
    bottom: AtomicU32,
    buf: SharedArray<u64>,
}

impl Deque {
    /// Creates an empty deque.
    pub fn new() -> Self {
        Deque {
            top: AtomicU32::named("deque.top", 0),
            bottom: AtomicU32::named("deque.bottom", 0),
            buf: SharedArray::named("deque.buf", CAP, 0),
        }
    }

    /// Owner-side push onto the bottom.
    pub fn push(&self, v: u64) {
        let b = self.bottom.load(Ordering::Relaxed);
        self.buf.set(b as usize % CAP, v);
        // Publication is correct (release): the bug is not here.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Thief-side steal from the top. Returns the stolen value.
    pub fn steal(&self) -> Option<u64> {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        let v = self.buf.get(t as usize % CAP); // reads the slot...
                                                // Bug: must be SeqCst/AcqRel; relaxed means the owner can see
                                                // the new `top` without synchronizing with the read above.
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            Some(v)
        } else {
            None
        }
    }

    /// Owner-side take from the bottom (simplified: only used to check
    /// emptiness in this benchmark body).
    pub fn size(&self) -> u32 {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t)
    }
}

impl Default for Deque {
    fn default() -> Self {
        Deque::new()
    }
}

/// Benchmark body: the owner fills the deque, a thief steals, and the
/// owner reuses slots the thief freed.
pub fn run() {
    let q = Arc::new(Deque::new());

    let q2 = Arc::clone(&q);
    let thief = c11tester::thread::spawn(move || {
        let mut got = 0;
        for _ in 0..3 {
            if q2.steal().is_some() {
                got += 1;
            }
        }
        got
    });

    for i in 1..=CAP as u64 {
        q.push(i);
    }
    // Reuse slots freed by steals: the owner *acquires* `top` (as the
    // real take()/push() paths do), so with a correctly ordered steal
    // CAS the reuse would be synchronized — the relaxed CAS is the only
    // missing link, and only the full fragment exposes it.
    for i in 0..2u64 {
        let t = q.top.load(Ordering::Acquire);
        if t > i as u32 {
            q.push(100 + i);
        }
    }
    let _ = thief.join();
}
