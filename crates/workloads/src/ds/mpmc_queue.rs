//! Bounded multi-producer/multi-consumer queue (CDSChecker benchmark
//! `mpmc-queue`).
//!
//! A ring of cells, each with a sequence stamp; producers and consumers
//! claim tickets with fetch_add. The seeded bug: the producer's stamp
//! publication is a **relaxed** store (correct: release), so a consumer
//! that observes the stamp may read the payload without
//! synchronization — a data race on the cell payload.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::SharedArray;
use std::sync::Arc;

const CAP: usize = 2;

/// The queue state.
#[derive(Debug)]
pub struct MpmcQueue {
    stamps: Vec<AtomicU32>,
    payload: SharedArray<u64>,
    head: AtomicU32,
    tail: AtomicU32,
}

impl MpmcQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        MpmcQueue {
            stamps: (0..CAP)
                .map(|i| AtomicU32::named(format!("mpmc.stamp{i}"), i as u32))
                .collect(),
            payload: SharedArray::named("mpmc.payload", CAP, 0),
            head: AtomicU32::named("mpmc.head", 0),
            tail: AtomicU32::named("mpmc.tail", 0),
        }
    }

    /// Enqueues `v`, spinning until a cell is free.
    pub fn push(&self, v: u64) {
        loop {
            let t = self.tail.load(Ordering::Relaxed);
            let cell = t as usize % CAP;
            let stamp = self.stamps[cell].load(Ordering::Acquire);
            if stamp == t
                && self
                    .tail
                    .compare_exchange(t, t + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.payload.set(cell, v);
                // Bug: should be Release.
                self.stamps[cell].store(t + 1, Ordering::Relaxed);
                return;
            }
            c11tester::thread::yield_now();
        }
    }

    /// Dequeues a value, spinning until one is available.
    pub fn pop(&self) -> u64 {
        loop {
            let h = self.head.load(Ordering::Relaxed);
            let cell = h as usize % CAP;
            let stamp = self.stamps[cell].load(Ordering::Acquire);
            if stamp == h + 1
                && self
                    .head
                    .compare_exchange(h, h + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                let v = self.payload.get(cell); // races with the producer
                self.stamps[cell].store(h + CAP as u32, Ordering::Release);
                return v;
            }
            c11tester::thread::yield_now();
        }
    }
}

impl Default for MpmcQueue {
    fn default() -> Self {
        MpmcQueue::new()
    }
}

/// Benchmark body: two producers, two consumers, two items each.
pub fn run() {
    run_n(2);
}

/// Scaled-up body for the `graph` bench group: same four threads, more
/// items flowing through the ring, so the per-location store histories
/// and the mo-graph grow well past the litmus scale.
pub fn run_large() {
    run_n(8);
}

/// Parameterized body: two producers and two consumers moving
/// `items` values each through the queue.
pub fn run_n(items: u64) {
    let q = Arc::new(MpmcQueue::new());
    let producers: Vec<_> = (0..2u64)
        .map(|p| {
            let q = Arc::clone(&q);
            c11tester::thread::spawn(move || {
                for i in 0..items {
                    q.push(p * 10 + i);
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let q = Arc::clone(&q);
            c11tester::thread::spawn(move || {
                let mut sum = 0;
                for _ in 0..items {
                    sum += q.pop();
                }
                sum
            })
        })
        .collect();
    for p in producers {
        p.join();
    }
    for c in consumers {
        let _ = c.join();
    }
}
