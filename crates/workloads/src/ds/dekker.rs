//! Dekker's mutual exclusion with seq_cst fences (CDSChecker benchmark
//! `dekker-fences`).
//!
//! The protocol uses relaxed flag accesses ordered by seq_cst fences.
//! The seeded bug weakens one thread's fence to release, which lets
//! both threads enter the critical section and race on the protected
//! data.

use c11tester::sync::atomic::{fence, AtomicU32, Ordering};
use c11tester::Shared;
use std::sync::Arc;

struct DekkerState {
    flag0: AtomicU32,
    flag1: AtomicU32,
    turn: AtomicU32,
    data: Shared<u64>,
}

fn critical(me: usize, st: &DekkerState) {
    let v = st.data.get();
    st.data.set(v + (me as u64) + 1);
}

fn lock(me: usize, st: &DekkerState, weak_fence: bool) {
    let (mine, other) = if me == 0 {
        (&st.flag0, &st.flag1)
    } else {
        (&st.flag1, &st.flag0)
    };
    mine.store(1, Ordering::Relaxed);
    if weak_fence {
        // Bug: must be SeqCst for the flag handshake to be total.
        fence(Ordering::Release);
    } else {
        fence(Ordering::SeqCst);
    }
    // Spins terminate under the model's fair random scheduler (every
    // load is a visible operation, so the peer always gets to run).
    while other.load(Ordering::Relaxed) == 1 {
        if st.turn.load(Ordering::Relaxed) != me as u32 {
            mine.store(0, Ordering::Relaxed);
            while st.turn.load(Ordering::Relaxed) != me as u32 {
                c11tester::thread::yield_now();
            }
            mine.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
        }
        c11tester::thread::yield_now();
    }
}

fn unlock(me: usize, st: &DekkerState) {
    st.turn
        .store(if me == 0 { 1 } else { 0 }, Ordering::Relaxed);
    let mine = if me == 0 { &st.flag0 } else { &st.flag1 };
    fence(Ordering::Release);
    mine.store(0, Ordering::Release);
}

/// Benchmark body: two threads contend with Dekker's algorithm; thread
/// 0's entry fence is the seeded weak one.
pub fn run() {
    let st = Arc::new(DekkerState {
        flag0: AtomicU32::named("dekker.flag0", 0),
        flag1: AtomicU32::named("dekker.flag1", 0),
        turn: AtomicU32::named("dekker.turn", 0),
        data: Shared::named("dekker.data", 0),
    });

    let s2 = Arc::clone(&st);
    let t1 = c11tester::thread::spawn(move || {
        lock(1, &s2, false);
        critical(1, &s2);
        unlock(1, &s2);
    });

    lock(0, &st, true); // weak fence: the seeded bug
    critical(0, &st);
    unlock(0, &st);
    t1.join();
}
