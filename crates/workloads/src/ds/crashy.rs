//! Deliberately crash-prone targets for exercising process isolation.
//!
//! The paper's evaluation runs real, buggy concurrent programs — and
//! real bugs do not stop at data-race reports: a racy read of a
//! not-yet-published pointer dereferences garbage and **segfaults the
//! process**. An in-process campaign cannot survive that; the fork
//! server (`c11tester-isolation`) turns the death into a
//! `CrashRecord`. These targets exist to prove that end to end:
//!
//! * [`run_null_deref`] — relaxed message passing where the consumer
//!   acts on the un-synchronized value: when the racy interleaving
//!   manifests (flag observed, payload still unpublished), it
//!   dereferences a null pointer exactly like the C original would.
//!   Whether a given execution crashes is a pure function of
//!   `(seed, execution index)`, so crash records are as deterministic
//!   as race reports.
//! * [`run_spin_forever`] — a model thread that spins without ever
//!   performing a model operation, so the cooperative scheduler can
//!   never preempt it and the execution wedges forever. Only
//!   meaningful under `--isolate --exec-timeout`; never run it
//!   in-process.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Reads through a null pointer, killing the process with SIGSEGV —
/// the model-level stand-in for the C idiom of dereferencing a
/// pointer whose initialization the flag store failed to publish.
fn crash_like_the_c_program_would() -> u8 {
    let null: *const u8 = std::ptr::null();
    // SAFETY: none — this is a deliberate, documented crash. The read
    // of address 0 faults on every platform the workspace targets;
    // `read_volatile` keeps the optimizer from eliding it.
    unsafe { std::ptr::read_volatile(null) }
}

/// Message passing with the publication bug *and* the consequence: the
/// producer publishes a payload behind a relaxed flag, and a consumer
/// that sees the flag but reads the unpublished payload (a legal
/// relaxed outcome C11Tester explores deliberately) dereferences null.
///
/// Executions where the schedule/reads-from choices hide the bug
/// complete normally (reporting nothing or only the benign outcome);
/// executions where the stale read manifests **kill the process**.
pub fn run_null_deref() {
    let payload = Arc::new(AtomicU32::named("crashy.payload", 0));
    let flag = Arc::new(AtomicU32::named("crashy.flag", 0));
    let (p2, f2) = (Arc::clone(&payload), Arc::clone(&flag));
    let producer = c11tester::thread::spawn(move || {
        p2.store(42, Ordering::Relaxed);
        f2.store(1, Ordering::Relaxed); // bug: should be Release
    });
    if flag.load(Ordering::Acquire) == 1 && payload.load(Ordering::Relaxed) == 0 {
        // Flag observed but payload unpublished: the C original would
        // now use an uninitialized pointer.
        let _ = crash_like_the_c_program_would();
    }
    producer.join();
}

/// Spins forever without a single model operation: the cooperative
/// run-token scheduler can never take control back, so the execution
/// hangs — in-process this wedges a campaign worker irrecoverably;
/// under the fork server `--exec-timeout` kills the child and records
/// a timeout `CrashRecord`.
pub fn run_spin_forever() {
    loop {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    // `run_null_deref` can only be exercised from a process that is
    // allowed to die (crates/adaptive/tests/isolation.rs spawns the
    // CLI for that); here we only pin the *healthy* path: executions
    // where the stale read does not manifest must complete and must
    // still be schedulable by the model.
    use c11tester::{Config, Model};

    #[test]
    fn healthy_interleavings_complete() {
        // Seed chosen so the first execution takes the non-crashing
        // path (the producer's stores land before the consumer reads,
        // or the flag read misses): the body itself must be a valid
        // model program.
        let mut model = Model::new(Config::new().with_seed(2));
        let report = model.run(super::run_null_deref);
        assert!(report.failure.is_none());
    }
}
