//! MCS queue lock (CDSChecker benchmark `mcs-lock`).
//!
//! Each contender enqueues a node by swapping itself into `tail` and
//! spins on its own `locked` flag. The seeded bug: the lock *handoff*
//! (the predecessor clearing the successor's flag) uses a **relaxed**
//! store and the spin uses **relaxed** loads — the correct protocol
//! needs release/acquire — so the successor enters the critical section
//! without synchronizing with the predecessor's writes.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::Shared;
use std::sync::Arc;

const NONE: u32 = u32::MAX;

/// Per-thread queue node.
#[derive(Debug)]
struct Node {
    next: AtomicU32,
    locked: AtomicU32,
}

/// MCS lock over a fixed node pool (one node per contender).
#[derive(Debug)]
pub struct McsLock {
    tail: AtomicU32,
    nodes: Vec<Node>,
}

impl McsLock {
    /// Creates a lock for up to `n` contenders.
    pub fn new(n: usize) -> Self {
        McsLock {
            tail: AtomicU32::named("mcs.tail", NONE),
            nodes: (0..n)
                .map(|i| Node {
                    next: AtomicU32::named(format!("mcs.node{i}.next"), NONE),
                    locked: AtomicU32::named(format!("mcs.node{i}.locked"), 0),
                })
                .collect(),
        }
    }

    /// Acquires the lock with contender id `me`.
    pub fn lock(&self, me: u32) {
        let node = &self.nodes[me as usize];
        node.next.store(NONE, Ordering::Relaxed);
        node.locked.store(1, Ordering::Relaxed);
        let prev = self.tail.swap(me, Ordering::AcqRel);
        if prev != NONE {
            self.nodes[prev as usize].next.store(me, Ordering::Release);
            // Bug: should be Acquire — without it the handoff does not
            // synchronize.
            while node.locked.load(Ordering::Relaxed) == 1 {
                c11tester::thread::yield_now();
            }
        }
    }

    /// Releases the lock held by contender `me`.
    pub fn unlock(&self, me: u32) {
        let node = &self.nodes[me as usize];
        let mut next = node.next.load(Ordering::Acquire);
        if next == NONE {
            if self
                .tail
                .compare_exchange(me, NONE, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            while {
                next = node.next.load(Ordering::Acquire);
                next == NONE
            } {
                c11tester::thread::yield_now();
            }
        }
        // Bug: should be Release — the handoff store.
        self.nodes[next as usize].locked.store(0, Ordering::Relaxed);
    }
}

/// Benchmark body: two contenders increment shared data under the lock.
pub fn run() {
    let lock = Arc::new(McsLock::new(2));
    let data = Arc::new(Shared::named("mcs.data", 0u64));

    let (l2, d2) = (Arc::clone(&lock), Arc::clone(&data));
    let t = c11tester::thread::spawn(move || {
        l2.lock(1);
        d2.set(d2.get() + 1);
        l2.unlock(1);
    });

    lock.lock(0);
    data.set(data.get() + 1);
    lock.unlock(0);
    t.join();
}
