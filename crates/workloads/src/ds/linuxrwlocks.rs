//! Linux-kernel-style reader-writer lock (CDSChecker benchmark
//! `linuxrwlocks`): a single counter initialized to a bias; readers
//! decrement by one, writers claim the whole bias.
//!
//! The seeded bug: the writer's unlock restores the bias with a
//! **relaxed** store (correct: release), so a reader that enters
//! afterwards does not synchronize with the writer's critical-section
//! writes — a reader/writer data race on the protected data. The bug is
//! in a plain store (not an RMW), so — unlike `rwlock_buggy` — every
//! policy's hb machinery can in principle observe it, matching the
//! paper's non-zero rates for all three tools.

use c11tester::sync::atomic::{AtomicI64, Ordering};
use c11tester::Shared;
use std::sync::Arc;

const BIAS: i64 = 0x0100_0000;

/// The rwlock word plus protected data.
#[derive(Debug)]
pub struct LinuxRwLock {
    lock: AtomicI64,
}

impl LinuxRwLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        LinuxRwLock {
            lock: AtomicI64::named("linuxrw.lock", BIAS),
        }
    }

    /// Shared acquisition. Returns `false` if the bounded attempt
    /// budget runs out — under the full C11 fragment, relaxed RMW
    /// chains can reach lock-word states that never clear, so the test
    /// driver (like any benchmark under an adversarial-but-legal
    /// memory model) must bound its spinning.
    pub fn read_lock(&self) -> bool {
        for _ in 0..8 {
            let v = self.lock.fetch_sub(1, Ordering::Acquire);
            if v > 0 {
                return true;
            }
            self.lock.fetch_add(1, Ordering::Relaxed);
            c11tester::thread::yield_now();
        }
        false
    }

    /// Shared release.
    pub fn read_unlock(&self) {
        self.lock.fetch_add(1, Ordering::Release);
    }

    /// Exclusive acquisition, bounded like [`LinuxRwLock::read_lock`].
    /// CAS-based so failed attempts do not perturb the counter.
    pub fn write_lock(&self) -> bool {
        for _ in 0..8 {
            if self
                .lock
                .compare_exchange(BIAS, 0, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
            c11tester::thread::yield_now();
        }
        false
    }

    /// Exclusive release — with the seeded relaxed-store bug. The
    /// holder owns the word exclusively (its value is 0), so restoring
    /// the bias is a plain store.
    pub fn write_unlock(&self) {
        // Bug: should be a release store.
        self.lock.store(BIAS, Ordering::Relaxed);
    }
}

impl Default for LinuxRwLock {
    fn default() -> Self {
        LinuxRwLock::new()
    }
}

/// Benchmark body: a writer updates data, readers validate it.
pub fn run() {
    let lock = Arc::new(LinuxRwLock::new());
    let data = Arc::new(Shared::named("linuxrw.data", 0u64));

    let (l2, d2) = (Arc::clone(&lock), Arc::clone(&data));
    let writer = c11tester::thread::spawn(move || {
        for i in 1..=2u64 {
            if l2.write_lock() {
                d2.set(i);
                l2.write_unlock();
            }
        }
    });

    let (l3, d3) = (Arc::clone(&lock), Arc::clone(&data));
    let reader = c11tester::thread::spawn(move || {
        for _ in 0..2 {
            if l3.read_lock() {
                let _ = d3.get(); // races with the writer when the unlock is relaxed
                l3.read_unlock();
            }
        }
    });

    writer.join();
    reader.join();
}
