//! Seqlock with the paper's §8.1 injected bug.
//!
//! Based on Figure 5 of Boehm's MSPC'12 seqlock paper: the writer
//! correctly uses **release** atomics for the data-field stores, and the
//! injected bug weakens the counter increments to **relaxed** (the
//! correct protocol needs release on the closing increment and an
//! acquire-compatible counter read).
//!
//! The observable failure is a *torn read*: a reader validates the
//! counter (even and unchanged) yet sees data fields from different
//! writer rounds. Exposing it requires a load to read a counter value
//! whose modification order disagrees with the tool's execution order —
//! the fragment tsan11/tsan11rec exclude (§1.1) — and, equally, requires
//! the relaxed `fetch_add` increments *not* to synchronize, which the
//! tsan-family's conservatively strengthened RMWs always do.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Number of writer rounds per execution.
pub const ROUNDS: u32 = 3;
/// Number of read attempts per execution.
pub const READS: u32 = 4;

/// Runs the seqlock benchmark body; `fixed` selects the correct
/// protocol instead of the injected bug.
///
/// # Panics
///
/// Panics (an assertion violation the model reports) when a torn read
/// is observed — the injected bug firing.
pub fn run(fixed: bool) {
    let count = Arc::new(AtomicU32::named("seqlock.count", 0));
    let data1 = Arc::new(AtomicU32::named("seqlock.data1", 0));
    let data2 = Arc::new(AtomicU32::named("seqlock.data2", 0));

    let (c, d1, d2) = (Arc::clone(&count), Arc::clone(&data1), Arc::clone(&data2));
    let inc_order = if fixed {
        Ordering::AcqRel
    } else {
        Ordering::Relaxed // injected bug
    };
    let writer = c11tester::thread::spawn(move || {
        for i in 1..=ROUNDS {
            c.fetch_add(1, inc_order); // odd: write in progress
            d1.store(i, Ordering::Release);
            d2.store(i, Ordering::Release);
            c.fetch_add(1, inc_order); // even: write complete
        }
    });

    for _ in 0..READS {
        let c1 = count.load(Ordering::Acquire);
        if !c1.is_multiple_of(2) {
            c11tester::thread::yield_now();
            continue;
        }
        let v1 = data1.load(Ordering::Acquire);
        let v2 = data2.load(Ordering::Acquire);
        let c2 = count.load(Ordering::Relaxed);
        if c1 == c2 {
            // The seqlock read protocol says this snapshot is
            // consistent; with the injected bug it may not be.
            assert_eq!(v1, v2, "seqlock torn read: data1={v1} data2={v2} seq={c1}");
        }
    }
    writer.join();
}

/// The buggy variant evaluated in §8.1.
pub fn run_buggy() {
    run(false);
}

/// The corrected protocol (control: must never fail).
pub fn run_fixed() {
    run(true);
}
