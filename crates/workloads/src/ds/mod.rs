//! Data-structure benchmarks: the CDSChecker suite used in Table 2,
//! the §8.1 injected-bug benchmarks, and the deliberately crash-prone
//! isolation targets ([`crashy`]).

pub mod barrier;
pub mod chase_lev;
pub mod crashy;
pub mod dekker;
pub mod linuxrwlocks;
pub mod mcs_lock;
pub mod mpmc_queue;
pub mod ms_queue;
pub mod rwlock_buggy;
pub mod seqlock;

/// The seven Table-2 data-structure benchmarks.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DsBench {
    /// Sense-reversing barrier.
    Barrier,
    /// Chase-Lev work-stealing deque.
    ChaseLevDeque,
    /// Dekker mutual exclusion with fences.
    DekkerFences,
    /// Linux-style reader-writer lock.
    LinuxRwLocks,
    /// MCS queue lock.
    McsLock,
    /// Bounded MPMC queue.
    MpmcQueue,
    /// Michael–Scott queue.
    MsQueue,
}

impl DsBench {
    /// All benchmarks in the paper's Table-2 order.
    pub fn all() -> [DsBench; 7] {
        [
            DsBench::Barrier,
            DsBench::ChaseLevDeque,
            DsBench::DekkerFences,
            DsBench::LinuxRwLocks,
            DsBench::McsLock,
            DsBench::MpmcQueue,
            DsBench::MsQueue,
        ]
    }

    /// Name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            DsBench::Barrier => "barrier",
            DsBench::ChaseLevDeque => "chase-lev-deque",
            DsBench::DekkerFences => "dekker-fences",
            DsBench::LinuxRwLocks => "linuxrwlocks",
            DsBench::McsLock => "mcs-lock",
            DsBench::MpmcQueue => "mpmc-queue",
            DsBench::MsQueue => "ms-queue",
        }
    }

    /// Runs the benchmark body (call inside a model execution).
    pub fn run(self) {
        match self {
            DsBench::Barrier => barrier::run(),
            DsBench::ChaseLevDeque => chase_lev::run(),
            DsBench::DekkerFences => dekker::run(),
            DsBench::LinuxRwLocks => linuxrwlocks::run(),
            DsBench::McsLock => mcs_lock::run(),
            DsBench::MpmcQueue => mpmc_queue::run(),
            DsBench::MsQueue => ms_queue::run(),
        }
    }
}
