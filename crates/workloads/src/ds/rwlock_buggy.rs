//! Reader-writer lock with the paper's §8.1 injected bug: the
//! write-lock acquisition "incorrectly uses relaxed atomics".
//!
//! The test case mirrors the paper's: the read-lock protects reads of
//! the shared data and the write-lock protects writes. A writer whose
//! lock CAS is relaxed does not synchronize with the previous writer's
//! release, so the two writers' critical-section accesses race.
//! tsan11/tsan11rec strengthen the CAS to acq_rel and therefore can
//! never observe the race; C11Tester models the relaxed RMW precisely.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::Shared;
use std::sync::Arc;

const WRITER_BIT: u32 = 1 << 16;

/// A small reader-writer lock over a single atomic word.
#[derive(Debug)]
pub struct RwLock {
    state: AtomicU32,
    write_order: Ordering,
}

impl RwLock {
    /// Creates the lock; `fixed` selects the correct acquire CAS for
    /// writers instead of the injected relaxed one.
    pub fn new(fixed: bool) -> Self {
        RwLock {
            state: AtomicU32::named("rwlock.state", 0),
            write_order: if fixed {
                Ordering::AcqRel
            } else {
                Ordering::Relaxed // injected bug
            },
        }
    }

    /// Acquires the lock in shared mode.
    pub fn read_lock(&self) {
        loop {
            let v = self.state.fetch_add(1, Ordering::Acquire);
            if v & WRITER_BIT == 0 {
                return;
            }
            self.state.fetch_sub(1, Ordering::Relaxed);
            c11tester::thread::yield_now();
        }
    }

    /// Releases a shared hold.
    pub fn read_unlock(&self) {
        self.state.fetch_sub(1, Ordering::Release);
    }

    /// Acquires the lock exclusively (with the buggy ordering unless
    /// constructed `fixed`).
    pub fn write_lock(&self) {
        loop {
            if self
                .state
                .compare_exchange(0, WRITER_BIT, self.write_order, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            c11tester::thread::yield_now();
        }
    }

    /// Releases an exclusive hold.
    pub fn write_unlock(&self) {
        self.state.fetch_sub(WRITER_BIT, Ordering::Release);
    }
}

/// Benchmark body: two writers and one reader over lock-protected data.
pub fn run(fixed: bool) {
    let lock = Arc::new(RwLock::new(fixed));
    let d1 = Arc::new(Shared::named("rwlock.data1", 0u32));
    let d2 = Arc::new(Shared::named("rwlock.data2", 0u32));

    let writers: Vec<_> = (1..=2u32)
        .map(|w| {
            let lock = Arc::clone(&lock);
            let d1 = Arc::clone(&d1);
            let d2 = Arc::clone(&d2);
            c11tester::thread::spawn(move || {
                for i in 0..2 {
                    lock.write_lock();
                    let v = w * 10 + i;
                    d1.set(v);
                    d2.set(v);
                    lock.write_unlock();
                }
            })
        })
        .collect();

    let reader = {
        let lock = Arc::clone(&lock);
        let d1 = Arc::clone(&d1);
        let d2 = Arc::clone(&d2);
        c11tester::thread::spawn(move || {
            for _ in 0..2 {
                lock.read_lock();
                let a = d1.get();
                let b = d2.get();
                assert_eq!(a, b, "rwlock invariant broken: {a} != {b}");
                lock.read_unlock();
            }
        })
    };

    for w in writers {
        w.join();
    }
    reader.join();
}

/// The buggy variant evaluated in §8.1.
pub fn run_buggy() {
    run(false);
}

/// The corrected protocol (control: must never fail).
pub fn run_fixed() {
    run(true);
}
