//! GDAX order-book simulation (paper §8.2).
//!
//! The real benchmark keeps an in-memory copy of the GDAX exchange's
//! order book in a lock-free skip list (libcds) with reader threads
//! iterating the book while a feed thread applies updates. All tools
//! reported data races in it.
//!
//! The simulation preserves that skeleton: a lock-free sorted
//! singly-linked list over a node pool (CAS insertion, release
//! publication), reader threads iterating the book, and the seeded
//! race the paper's tools flag — order *sizes* are updated in place
//! with plain accesses while readers traverse.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::SharedArray;

use std::sync::Arc;

const NONE: u32 = u32::MAX;

/// The order book: a sorted linked list of (price, size) orders.
#[derive(Debug)]
pub struct OrderBook {
    head: AtomicU32,
    next: Vec<AtomicU32>,
    price: SharedArray<u64>,
    /// In-place mutable order size — the seeded race target.
    size: SharedArray<u64>,
    alloc: AtomicU32,
}

impl OrderBook {
    /// Creates a book with capacity for `cap` orders.
    pub fn new(cap: usize) -> Self {
        OrderBook {
            head: AtomicU32::named("gdax.head", NONE),
            next: (0..cap)
                .map(|i| AtomicU32::named(format!("gdax.next{i}"), NONE))
                .collect(),
            price: SharedArray::named("gdax.price", cap, 0),
            size: SharedArray::named("gdax.size", cap, 0),
            alloc: AtomicU32::named("gdax.alloc", 0),
        }
    }

    /// Inserts an order at the head (prices arrive pre-sorted in the
    /// recorded feed). Publication of the node is correct (release CAS);
    /// the race is on later in-place `size` updates.
    pub fn insert(&self, price: u64, size: u64) -> u32 {
        let n = self.alloc.fetch_add(1, Ordering::AcqRel);
        assert!((n as usize) < self.next.len(), "order pool exhausted");
        self.price.set(n as usize, price);
        self.size.set(n as usize, size);
        loop {
            let h = self.head.load(Ordering::Acquire);
            self.next[n as usize].store(h, Ordering::Relaxed);
            if self
                .head
                .compare_exchange(h, n, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return n;
            }
            c11tester::thread::yield_now();
        }
    }

    /// In-place size update (the feed applies a "change" message) —
    /// plain write, racing with readers.
    pub fn update_size(&self, node: u32, size: u64) {
        self.size.set(node as usize, size);
    }

    /// Walks the book, summing sizes. Returns (orders, total size).
    pub fn iterate(&self) -> (u64, u64) {
        let mut n = self.head.load(Ordering::Acquire);
        let mut count = 0;
        let mut total = 0;
        while n != NONE {
            total += self.size.get(n as usize); // races with update_size
            count += 1;
            n = self.next[n as usize].load(Ordering::Acquire);
        }
        (count, total)
    }
}

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct GdaxConfig {
    /// Reader threads iterating the book (the paper uses 5).
    pub readers: usize,
    /// Feed messages (half inserts, half size changes).
    pub messages: usize,
    /// Iterations each reader performs.
    pub iterations_per_reader: usize,
}

impl Default for GdaxConfig {
    fn default() -> Self {
        GdaxConfig {
            readers: 3,
            messages: 30,
            iterations_per_reader: 10,
        }
    }
}

/// Runs the simulation. Returns the number of complete book iterations
/// (the paper's GDAX throughput metric).
pub fn run(cfg: GdaxConfig) -> u64 {
    let book = Arc::new(OrderBook::new(cfg.messages + 1));
    let iterations = Arc::new(AtomicU32::named("gdax.iterations", 0));

    let feed = {
        let book = Arc::clone(&book);
        c11tester::thread::spawn(move || {
            let mut last = NONE;
            for m in 0..cfg.messages {
                if m % 2 == 0 || last == NONE {
                    last = book.insert(1000 + m as u64, 10);
                } else {
                    book.update_size(last, 10 + m as u64);
                }
            }
        })
    };

    let readers: Vec<_> = (0..cfg.readers)
        .map(|_| {
            let book = Arc::clone(&book);
            let iterations = Arc::clone(&iterations);
            c11tester::thread::spawn(move || {
                // Aggregation buffers: the non-atomic bookkeeping a real
                // order-book consumer performs per sweep.
                let hist = SharedArray::named("gdax.hist", 16, 0u64);
                for it in 0..cfg.iterations_per_reader {
                    let (count, total) = book.iterate();
                    for k in 0..16 {
                        hist.set(k, hist.get(k).wrapping_add(total >> k));
                    }
                    hist.set(it % 16, count);
                    iterations.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    feed.join();
    for r in readers {
        r.join();
    }
    u64::from(iterations.load(Ordering::Acquire))
}
