//! Silo-style multicore in-memory storage engine (paper §8.2).
//!
//! The real Silo [Tu et al., SOSP'13] protects records with spinlocks
//! built from **volatiles plus gcc intrinsic atomics** and assumes
//! stronger-than-standard volatile semantics. C11Tester's default
//! handling of volatiles as *relaxed* atomics exposed invariant
//! violations: the lock release (a plain volatile store) does not
//! synchronize, so the next lock holder can observe torn record state.
//! Treating volatiles as acquire/release made the bug disappear.
//!
//! This simulation preserves exactly that concurrency skeleton: worker
//! threads run read/update transactions against records whose invariant
//! is `a == b`; each record is guarded by a test-and-set spinlock whose
//! acquisition is a real atomic RMW (the gcc intrinsic) but whose
//! release is a plain **volatile** store governed by the configured
//! volatile ordering.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::{SharedArray, VolatileU32};
use std::sync::Arc;

/// One record: spinlock word (volatile), and a pair of fields that must
/// stay equal.
#[derive(Debug)]
pub struct Record {
    lock: VolatileU32,
    a: AtomicU32,
    b: AtomicU32,
}

impl Record {
    fn new(ix: usize) -> Self {
        Record {
            lock: VolatileU32::named(format!("silo.rec{ix}.lock"), 0),
            a: AtomicU32::named(format!("silo.rec{ix}.a"), 0),
            b: AtomicU32::named(format!("silo.rec{ix}.b"), 0),
        }
    }

    /// gcc `__sync_lock_test_and_set`-style acquisition: an acquire RMW
    /// on the volatile word.
    fn lock(&self) {
        loop {
            if self.lock.test_and_set() {
                return;
            }
            c11tester::thread::yield_now();
        }
    }

    /// Release via a *plain volatile store* — the Silo bug surface: with
    /// volatiles handled as relaxed atomics this does not synchronize.
    fn unlock(&self) {
        self.lock.write(0);
    }
}

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct SiloConfig {
    /// Number of worker threads (the paper runs Silo with `-t 5`).
    pub workers: usize,
    /// Transactions per worker.
    pub txns_per_worker: usize,
    /// Number of records in the table.
    pub records: usize,
    /// Check the `a == b` invariant inside read transactions.
    pub check_invariants: bool,
}

impl Default for SiloConfig {
    fn default() -> Self {
        SiloConfig {
            workers: 3,
            txns_per_worker: 30,
            records: 4,
            check_invariants: true,
        }
    }
}

/// Paper-scale body for the `graph` bench group: the evaluation runs
/// Silo with `-t 5`; five workers over a larger table with a bigger
/// per-worker transaction budget grow the lock/record histories (and
/// the mo-graph) far past the default simulation size.
pub fn run_large() {
    run(SiloConfig {
        workers: 5,
        txns_per_worker: 50,
        records: 8,
        check_invariants: false,
    });
}

/// Runs the Silo simulation inside a model execution. Returns the
/// number of committed transactions.
pub fn run(cfg: SiloConfig) -> u64 {
    let table: Arc<Vec<Record>> = Arc::new((0..cfg.records).map(Record::new).collect());
    let committed = Arc::new(AtomicU32::named("silo.committed", 0));

    let handles: Vec<_> = (0..cfg.workers)
        .map(|w| {
            let table = Arc::clone(&table);
            let committed = Arc::clone(&committed);
            c11tester::thread::spawn(move || {
                // Per-worker scratch heap: the non-atomic work a real
                // transaction does around its record accesses (keeps
                // Table 3's normal:atomic mix near the paper's ~6:1).
                let scratch = SharedArray::named(format!("silo.w{w}.scratch"), 8, 0u64);
                let mut x = (w as u32).wrapping_mul(2654435761).wrapping_add(1);
                for i in 0..cfg.txns_per_worker {
                    for k in 0..12 {
                        let ix = (i + k) % 8;
                        scratch.set(ix, scratch.get(ix).wrapping_add(k as u64));
                    }
                    x = x.wrapping_mul(1103515245).wrapping_add(12345);
                    let rec = &table[(x >> 8) as usize % table.len()];
                    rec.lock();
                    if i % 3 == 0 {
                        // Update transaction: bump both fields.
                        let a = rec.a.load(Ordering::Relaxed);
                        rec.a.store(a + 1, Ordering::Relaxed);
                        let b = rec.b.load(Ordering::Relaxed);
                        rec.b.store(b + 1, Ordering::Relaxed);
                    } else if cfg.check_invariants {
                        // Read transaction: the invariant must hold
                        // under the lock.
                        let a = rec.a.load(Ordering::Relaxed);
                        let b = rec.b.load(Ordering::Relaxed);
                        assert_eq!(
                            a, b,
                            "silo invariant violated under spinlock (volatile release)"
                        );
                    }
                    rec.unlock();
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    u64::from(committed.load(Ordering::Acquire))
}
