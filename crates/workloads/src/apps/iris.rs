//! Iris-style asynchronous logger (paper §8.2).
//!
//! Iris buffers log messages through lock-free single-producer/
//! single-consumer ring buffers; the paper's driver
//! (`test_lfringbuffer.cpp`) runs one producer and one consumer. All
//! tools reported data races. The seeded race here matches that shape:
//! the ring's *publish* store is relaxed where the protocol needs
//! release, so the consumer's payload read races with the producer's
//! write.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::SharedArray;

use std::sync::Arc;

/// Lock-free SPSC ring buffer.
#[derive(Debug)]
pub struct RingBuffer {
    slots: SharedArray<u64>,
    head: AtomicU32,
    tail: AtomicU32,
    cap: usize,
}

impl RingBuffer {
    /// Creates a ring with `cap` slots.
    pub fn new(cap: usize) -> Self {
        RingBuffer {
            slots: SharedArray::named("iris.slots", cap, 0),
            head: AtomicU32::named("iris.head", 0),
            tail: AtomicU32::named("iris.tail", 0),
            cap,
        }
    }

    /// Producer-side push; spins while full.
    pub fn push(&self, v: u64) {
        loop {
            let t = self.tail.load(Ordering::Relaxed);
            let h = self.head.load(Ordering::Acquire);
            if (t.wrapping_sub(h) as usize) < self.cap {
                self.slots.set(t as usize % self.cap, v);
                // Bug: must be Release to publish the slot write.
                self.tail.store(t + 1, Ordering::Relaxed);
                return;
            }
            c11tester::thread::yield_now();
        }
    }

    /// Consumer-side pop; spins while empty.
    pub fn pop(&self) -> u64 {
        loop {
            let h = self.head.load(Ordering::Relaxed);
            let t = self.tail.load(Ordering::Acquire);
            if h != t {
                let v = self.slots.get(h as usize % self.cap); // races
                self.head.store(h + 1, Ordering::Release);
                return v;
            }
            c11tester::thread::yield_now();
        }
    }
}

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct IrisConfig {
    /// Messages logged (the paper uses 1M; scaled for model runs).
    pub messages: usize,
    /// Ring capacity.
    pub capacity: usize,
}

impl Default for IrisConfig {
    fn default() -> Self {
        IrisConfig {
            messages: 40,
            capacity: 4,
        }
    }
}

/// Runs the logging benchmark. Returns the checksum of consumed
/// messages (sanity signal for the harness).
pub fn run(cfg: IrisConfig) -> u64 {
    let ring = Arc::new(RingBuffer::new(cfg.capacity));
    let consumer = {
        let ring = Arc::clone(&ring);
        c11tester::thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..cfg.messages {
                sum = sum.wrapping_add(ring.pop());
            }
            sum
        })
    };
    // Message formatting scratch: the non-atomic byte shuffling a real
    // logger performs before publishing each record.
    let fmt = SharedArray::named("iris.fmt", 8, 0u64);
    for m in 1..=cfg.messages as u64 {
        for b in 0..8 {
            fmt.set(b, m.rotate_left(b as u32));
        }
        let mut sum = 0;
        for b in 0..8 {
            sum ^= fmt.get(b);
        }
        ring.push(m ^ (sum & 1));
    }
    consumer.join()
}
