//! Mabain-style key-value store (paper §8.2).
//!
//! Mabain's multi-thread insertion test has one asynchronous writer and
//! several workers that submit insertion jobs through a lock-protected
//! queue. The paper's finding: *"there is no check to make sure that
//! all jobs in the queue have been cleared before the writer is
//! stopped. Thus, after the writer is stopped, some values may not be
//! found in the Mabain database, causing assertion failures."* All
//! tools also found data races in Mabain; here the seeded race is a
//! plain `jobs_done` statistics counter the writer and workers both
//! bump.

use c11tester::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use c11tester::sync::{Condvar, Mutex};
use c11tester::{Shared, SharedArray};
use std::collections::VecDeque;
use std::sync::Arc;

/// The store plus the async-writer machinery.
#[derive(Debug)]
pub struct Mabain {
    /// Value per key (0 = absent); published with release stores.
    table: Vec<AtomicU32>,
    queue: Mutex<VecDeque<(usize, u32)>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    /// Plain statistics counter — the seeded data race.
    jobs_done: Shared<u64>,
}

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct MabainConfig {
    /// Worker threads submitting insertions.
    pub workers: usize,
    /// Insertions per worker.
    pub inserts_per_worker: usize,
    /// Whether to run the final presence assertions (the test driver's
    /// assertion that exposes the lost-drain bug).
    pub verify: bool,
}

impl Default for MabainConfig {
    fn default() -> Self {
        MabainConfig {
            workers: 2,
            inserts_per_worker: 6,
            verify: true,
        }
    }
}

/// Runs the insertion test. Returns the number of keys present at the
/// end.
pub fn run(cfg: MabainConfig) -> u64 {
    let keys = cfg.workers * cfg.inserts_per_worker;
    let db = Arc::new(Mabain {
        table: (0..keys)
            .map(|i| AtomicU32::named(format!("mabain.val{i}"), 0))
            .collect(),
        queue: Mutex::named("mabain.queue", VecDeque::new()),
        queue_cv: Condvar::new(),
        stop: AtomicBool::named("mabain.stop", false),
        jobs_done: Shared::named("mabain.jobs_done", 0),
    });

    // The async writer: drains the queue until stopped.
    let writer = {
        let db = Arc::clone(&db);
        c11tester::thread::spawn(move || {
            loop {
                let job = {
                    let mut q = db.queue.lock();
                    loop {
                        // The bug, faithfully: the stop check runs
                        // *before* draining what is left in the queue.
                        if db.stop.load(Ordering::Acquire) {
                            break None;
                        }
                        if let Some(job) = q.pop_front() {
                            break Some(job);
                        }
                        q = db.queue_cv.wait(q);
                    }
                };
                match job {
                    None => return, // stopped — queue may still be non-empty later!
                    Some((k, v)) => {
                        db.table[k].store(v, Ordering::Release);
                        // Seeded race: plain counter also bumped by workers.
                        db.jobs_done.set(db.jobs_done.get() + 1);
                    }
                }
            }
        })
    };

    // Workers submit jobs.
    let workers: Vec<_> = (0..cfg.workers)
        .map(|w| {
            let db = Arc::clone(&db);
            c11tester::thread::spawn(move || {
                // Key/value serialization scratch (non-atomic work per
                // insert; Table 3 shows Mabain heavily normal-access
                // dominated).
                let buf = SharedArray::named(format!("mabain.w{w}.buf"), 16, 0u64);
                for i in 0..cfg.inserts_per_worker {
                    let k = w * cfg.inserts_per_worker + i;
                    for b in 0..16 {
                        buf.set(b, (k as u64) << b);
                    }
                    let mut acc = 0;
                    for b in 0..16 {
                        acc ^= buf.get(b);
                    }
                    std::hint::black_box(acc);
                    {
                        let mut q = db.queue.lock();
                        q.push_back((k, (k + 1) as u32));
                    }
                    db.queue_cv.notify_one();
                    // Seeded race on the statistics counter.
                    db.jobs_done.set(db.jobs_done.get() + 1);
                }
            })
        })
        .collect();

    for w in workers {
        w.join();
    }

    // The bug: stop the writer *without* waiting for the queue to
    // drain.
    db.stop.store(true, Ordering::Release);
    db.queue_cv.notify_all();
    writer.join();

    let mut present = 0;
    for k in 0..keys {
        let v = db.table[k].load(Ordering::Acquire);
        if cfg.verify {
            assert!(
                v != 0,
                "mabain: key {k} lost — writer stopped before draining the queue"
            );
        }
        if v != 0 {
            present += 1;
        }
    }
    present
}
