//! JSBench-style JavaScript-engine workload (paper §8.2, Tables 1 & 4).
//!
//! The paper tests the Firefox JavaScript engine on JSBench — 25
//! benchmarks sampled from real web applications (5 sites × 5 browser
//! profiles). The defining property for the *tool* is the op mix:
//! enormous numbers of normal (non-atomic) shared-memory accesses with
//! comparatively few atomics (Table 4 shows ratios near 1:1 down to
//! 50M:47M per variant) across a couple of runtime threads.
//!
//! The simulation runs an "interpreter" thread (heavy non-atomic heap
//! traffic over a shared object graph) alongside a "GC/helper" thread
//! exchanging work through atomic reference counts and a release/
//! acquire handshake — no bugs; this workload exists for the
//! performance and op-count experiments.

use c11tester::sync::atomic::{AtomicU32, Ordering};
use c11tester::SharedArray;
use std::sync::Arc;

/// One of the 25 JSBench variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsVariant {
    /// Site the trace was sampled from.
    pub site: &'static str,
    /// Browser profile.
    pub profile: &'static str,
    /// Interpreter steps (scaled from the real trace lengths so that
    /// per-variant *relative* weight matches Table 4).
    pub steps: usize,
}

const SITES: [(&str, usize); 5] = [
    ("amazon", 80),
    ("facebook", 400),
    ("google", 300),
    ("twitter", 120),
    ("yahoo", 280),
];

const PROFILES: [(&str, usize); 5] = [
    ("chrome", 100),
    ("chrome-win", 110),
    ("firefox", 80),
    ("firefox-win", 70),
    ("safari", 120),
];

/// All 25 variants (5 sites × 5 profiles).
pub fn variants() -> Vec<JsVariant> {
    let mut v = Vec::with_capacity(25);
    for (site, s_w) in SITES {
        for (profile, p_w) in PROFILES {
            v.push(JsVariant {
                site,
                profile,
                steps: s_w * p_w / 100,
            });
        }
    }
    v
}

/// Display name like the paper's `amazon/chrome`.
pub fn name(v: &JsVariant) -> String {
    format!("{}/{}", v.site, v.profile)
}

/// Runs one variant inside a model execution. Returns a checksum.
pub fn run(v: JsVariant) -> u64 {
    const HEAP: usize = 64;
    let heap = Arc::new(SharedArray::named("js.heap", HEAP, 0u64));
    let refcount = Arc::new(AtomicU32::named("js.refcount", 1));
    let gc_flag = Arc::new(AtomicU32::named("js.gc", 0));

    // GC/helper thread: occasionally scans a heap region it *owns*
    // (indices handed over via the release/acquire flag) and adjusts
    // reference counts.
    let gc = {
        let heap = Arc::clone(&heap);
        let refcount = Arc::clone(&refcount);
        let gc_flag = Arc::clone(&gc_flag);
        c11tester::thread::spawn(move || {
            let mut sweeps = 0u64;
            let rounds = (v.steps / 32).max(1);
            for _ in 0..rounds {
                // Wait for the interpreter to hand over the heap.
                while gc_flag.load(Ordering::Acquire) == 0 {
                    c11tester::thread::yield_now();
                }
                for i in 0..HEAP / 8 {
                    sweeps = sweeps.wrapping_add(heap.get(i * 8));
                }
                refcount.fetch_add(1, Ordering::AcqRel);
                gc_flag.store(0, Ordering::Release);
            }
            sweeps
        })
    };

    // Interpreter: dominated by non-atomic heap reads/writes.
    let mut acc = 0u64;
    let rounds = (v.steps / 32).max(1);
    for r in 0..rounds {
        for step in 0..32 {
            let ix = (r * 37 + step * 13) % HEAP;
            let val = heap.get(ix);
            heap.set((ix + 7) % HEAP, val.wrapping_add(step as u64));
            acc = acc.wrapping_add(val);
        }
        // Hand the heap to the GC and wait for it back: a proper
        // release/acquire handshake, so the heap traffic never races.
        gc_flag.store(1, Ordering::Release);
        while gc_flag.load(Ordering::Acquire) != 0 {
            c11tester::thread::yield_now();
        }
    }
    acc.wrapping_add(gc.join())
}
