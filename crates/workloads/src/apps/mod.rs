//! Application-scale workload simulations (Table 1 / Table 3 / §8.2).

pub mod gdax;
pub mod iris;
pub mod jsbench;
pub mod mabain;
pub mod silo;

/// The five Table-1 applications.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AppBench {
    /// Silo multicore storage engine.
    Silo,
    /// GDAX order book.
    Gdax,
    /// Mabain key-value store.
    Mabain,
    /// Iris asynchronous logger.
    Iris,
    /// Firefox JS engine on JSBench.
    JsBench,
}

impl AppBench {
    /// All applications in the paper's Table-1 order.
    pub fn all() -> [AppBench; 5] {
        [
            AppBench::Silo,
            AppBench::Gdax,
            AppBench::Mabain,
            AppBench::Iris,
            AppBench::JsBench,
        ]
    }

    /// Name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            AppBench::Silo => "Silo",
            AppBench::Gdax => "GDAX",
            AppBench::Mabain => "Mabain",
            AppBench::Iris => "Iris",
            AppBench::JsBench => "JSBench",
        }
    }

    /// Runs the default-parameter body (call inside a model execution).
    /// Assertion checking is disabled, as in the paper's performance
    /// runs.
    pub fn run_default(self) {
        match self {
            AppBench::Silo => {
                silo::run(silo::SiloConfig {
                    check_invariants: false,
                    ..silo::SiloConfig::default()
                });
            }
            AppBench::Gdax => {
                gdax::run(gdax::GdaxConfig::default());
            }
            AppBench::Mabain => {
                mabain::run(mabain::MabainConfig {
                    verify: false,
                    ..mabain::MabainConfig::default()
                });
            }
            AppBench::Iris => {
                iris::run(iris::IrisConfig::default());
            }
            AppBench::JsBench => {
                let v = jsbench::variants();
                jsbench::run(v[0]);
            }
        }
    }
}
