//! Offline stand-in for `parking_lot`.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors the small `parking_lot` surface it uses — [`Mutex`] with a
//! non-poisoning guard and [`Condvar`] whose `wait` takes `&mut
//! MutexGuard` — implemented over `std::sync`. Semantics match what the
//! callers rely on: `lock()` never returns a poison error (a poisoned
//! std mutex is recovered via `into_inner`), and condvar waits may wake
//! spuriously exactly as std's do.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual-exclusion primitive with `parking_lot`'s panic-tolerant API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard.
    inner: Option<StdGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons: a
    /// panic while holding the lock leaves the data accessible.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable whose `wait` reborrows the guard in place.
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically releases the guarded mutex and waits for a
    /// notification, reacquiring before returning. Spurious wakeups are
    /// possible, as with `std`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let taken = guard.inner.take().expect("guard present outside wait");
        let reacquired = self
            .inner
            .wait(taken)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        t.join().expect("waiter exits");
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("uncontended"), 5);
    }
}
