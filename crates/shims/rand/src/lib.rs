//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors the subset of `rand`'s 0.8 API that the schedulers and
//! tests use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and
//! [`Rng::gen_bool`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! high-quality, and (the only property the tool depends on)
//! deterministic per seed. It does **not** reproduce the exact stream
//! of the real `rand::rngs::StdRng`; schedules derived from a seed are
//! stable within this workspace only, which is the guarantee the model
//! documents.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the (non-empty) range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`;
    /// `NaN` behaves as 0).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 random bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform integer below `bound` via 128-bit multiply-shift with
/// rejection (Lemire's method): unbiased and branch-light.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // start < end guarantees 1 <= width <= max, no wrap.
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, width) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Named generators (subset: only [`rngs::StdRng`]).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is a fixed point; SplitMix64 cannot produce
            // four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0..=4usize);
            assert!(y <= 4);
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert_eq!(seen, [true; 5]);
    }

    #[test]
    fn gen_bool_probability_roughly_respected() {
        let mut r = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}/10000");
    }
}
