//! The child side of the fork server: `c11campaign --worker`.
//!
//! A worker child is identified purely by **`(target, seed, global
//! index range)`** plus the strategy/policy configuration — never by a
//! closure or any parent-process state — so the executions it runs are
//! the exact executions an in-process campaign would have run at the
//! same indices, and any crash it suffers replays from the same
//! coordinates. The child walks its range serially (stride 1), writes
//! one [`protocol`](crate::protocol) `exec` frame per completed
//! execution to stdout, and finishes with a `done` frame; a child that
//! dies before `done` was mid-execution, and the parent derives the
//! crashing index as `first_index + frames received`.

use crate::protocol::{
    coverage_payload, done_payload, exec_payload, metrics_payload, write_frame, BatchMetrics,
};
use c11tester::{Config, CoverageMap, Model, Policy, StrategyMix};
use c11tester_campaign::{targets, StopReason};
use std::io::Write;
use std::process::ExitCode;

/// Everything a worker child needs to reproduce its slice of the
/// campaign: the flag form (see [`WorkerSpec::to_args`]) is the whole
/// parent→child interface.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerSpec {
    /// Named workload ([`targets::find`]) to run.
    pub target: String,
    /// The campaign's base seed.
    pub seed: u64,
    /// Memory-model policy.
    pub policy: Policy,
    /// Strategy mix spec, if the campaign mixes strategies.
    pub mix: Option<String>,
    /// First global execution index of the batch.
    pub first_index: u64,
    /// Number of executions in the batch.
    pub executions: u64,
    /// Stop the batch at the first bug (the parent stops dispatching
    /// further batches when it sees the resulting `done` frame).
    pub stop_on_first_bug: bool,
    /// Emit a [`BatchMetrics`] frame (batch alloc counters + phase
    /// profile) just before `done`.
    pub emit_metrics: bool,
    /// Enable phase profiling in the child
    /// ([`c11tester_telemetry::set_profiling`]), so the metrics frame
    /// carries nonzero phase timings.
    pub profile_phases: bool,
    /// Enable behavior-coverage collection in the child
    /// ([`c11tester_telemetry::set_coverage`]); the child folds its
    /// executions' signatures into one [`CoverageMap`] and ships it as
    /// a single `coverage` frame before `done`.
    pub collect_coverage: bool,
    /// Run the child's model threads on the pooled runtime (the
    /// default). `false` mirrors the parent's `--no-thread-pool` A/B
    /// switch into the child — behaviorally invisible either way.
    pub thread_pool: bool,
    /// Mirror the parent's `--memory-limit` mode into the child:
    /// windowed pruning plus mo-graph arena compaction
    /// ([`Config::with_memory_limit`]).
    pub memory_limit: bool,
}

impl WorkerSpec {
    /// The child command-line for this spec: `--worker` followed by
    /// flag/value pairs ([`parse_worker_args`] is the inverse).
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--worker".to_string(),
            "--target".to_string(),
            self.target.clone(),
            "--seed".to_string(),
            self.seed.to_string(),
            "--policy".to_string(),
            policy_flag(self.policy).to_string(),
            "--first-index".to_string(),
            self.first_index.to_string(),
            "--executions".to_string(),
            self.executions.to_string(),
        ];
        if let Some(mix) = &self.mix {
            args.push("--mix".to_string());
            args.push(mix.clone());
        }
        if self.stop_on_first_bug {
            args.push("--stop-on-first-bug".to_string());
        }
        if self.emit_metrics {
            args.push("--emit-metrics".to_string());
        }
        if self.profile_phases {
            args.push("--profile-phases".to_string());
        }
        if self.collect_coverage {
            args.push("--coverage".to_string());
        }
        if !self.thread_pool {
            args.push("--no-thread-pool".to_string());
        }
        if self.memory_limit {
            args.push("--memory-limit".to_string());
        }
        args
    }

    /// The model configuration the batch runs under — identical to the
    /// parent campaign's, reconstructed from the flag surface.
    pub fn config(&self) -> Result<Config, String> {
        let mut config = Config::for_policy(self.policy)
            .with_seed(self.seed)
            .with_thread_pool(self.thread_pool);
        if let Some(mix) = &self.mix {
            config = config.with_mix(StrategyMix::parse(mix)?);
        }
        if self.memory_limit {
            config = config.with_memory_limit();
        }
        Ok(config)
    }

    /// Runs the batch, streaming frames to `out`. Returns the stop
    /// reason also emitted in the final `done` frame.
    pub fn run(&self, out: &mut impl Write) -> Result<StopReason, String> {
        let target =
            targets::find(&self.target).ok_or(format!("unknown target `{}`", self.target))?;
        if self.profile_phases {
            c11tester_telemetry::set_profiling(true);
        }
        if self.collect_coverage {
            c11tester_telemetry::set_coverage(true);
        }
        let config = self.config()?;
        let mut model = Model::for_shard_from(config, self.first_index, 1);
        let mut reason = StopReason::BudgetExhausted;
        let mut batch = BatchMetrics::default();
        let mut coverage = CoverageMap::new();
        for _ in 0..self.executions {
            let report = model.run(|| target.run());
            let bug = report.found_bug();
            if self.emit_metrics {
                batch.alloc.absorb(&report.stats.alloc);
                batch.phase.absorb(&report.stats.phase);
                batch.graph.absorb(&report.stats.mograph_perf);
            }
            if self.collect_coverage {
                coverage.record(report.execution_index, &report.coverage, &report.races);
            }
            write_frame(out, &exec_payload(&report)).map_err(|e| format!("pipe closed: {e}"))?;
            if bug && self.stop_on_first_bug {
                reason = StopReason::FirstBug;
                break;
            }
        }
        if self.collect_coverage {
            write_frame(out, &coverage_payload(&coverage))
                .map_err(|e| format!("pipe closed: {e}"))?;
        }
        if self.emit_metrics {
            // Thread-provisioning counters are cumulative over the
            // model's lifetime, which for a child *is* the batch.
            batch.threads = model.thread_stats();
            write_frame(out, &metrics_payload(&batch)).map_err(|e| format!("pipe closed: {e}"))?;
        }
        write_frame(out, &done_payload(reason)).map_err(|e| format!("pipe closed: {e}"))?;
        Ok(reason)
    }
}

fn policy_flag(policy: Policy) -> &'static str {
    match policy {
        Policy::C11Tester => "c11tester",
        Policy::Tsan11 => "tsan11",
        Policy::Tsan11Rec => "tsan11rec",
    }
}

fn parse_policy_flag(name: &str) -> Result<Policy, String> {
    match name.to_ascii_lowercase().as_str() {
        "c11tester" => Ok(Policy::C11Tester),
        "tsan11" => Ok(Policy::Tsan11),
        "tsan11rec" => Ok(Policy::Tsan11Rec),
        other => Err(format!("unknown policy `{other}`")),
    }
}

/// Parses the argument list *after* the leading `--worker` flag (the
/// inverse of [`WorkerSpec::to_args`]).
pub fn parse_worker_args(argv: impl Iterator<Item = String>) -> Result<WorkerSpec, String> {
    let mut target = None;
    let mut seed = None;
    let mut policy = Policy::C11Tester;
    let mut mix = None;
    let mut first_index = None;
    let mut executions = None;
    let mut stop_on_first_bug = false;
    let mut emit_metrics = false;
    let mut profile_phases = false;
    let mut collect_coverage = false;
    let mut thread_pool = true;
    let mut memory_limit = false;
    let mut argv = argv.peekable();
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--target" => target = Some(value()?),
            "--seed" => seed = Some(parse_u64(&value()?)?),
            "--policy" => policy = parse_policy_flag(&value()?)?,
            "--mix" => {
                let spec = value()?;
                StrategyMix::parse(&spec)?; // validate eagerly
                mix = Some(spec);
            }
            "--first-index" => first_index = Some(parse_u64(&value()?)?),
            "--executions" => executions = Some(parse_u64(&value()?)?),
            "--stop-on-first-bug" => stop_on_first_bug = true,
            "--emit-metrics" => emit_metrics = true,
            "--profile-phases" => profile_phases = true,
            "--coverage" => collect_coverage = true,
            "--no-thread-pool" => thread_pool = false,
            "--memory-limit" => memory_limit = true,
            other => return Err(format!("unknown worker flag `{other}`")),
        }
    }
    Ok(WorkerSpec {
        target: target.ok_or("--worker requires --target")?,
        seed: seed.ok_or("--worker requires --seed")?,
        policy,
        mix,
        first_index: first_index.ok_or("--worker requires --first-index")?,
        executions: executions.ok_or("--worker requires --executions")?,
        stop_on_first_bug,
        emit_metrics,
        profile_phases,
        collect_coverage,
        thread_pool,
        memory_limit,
    })
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("not a number: `{s}`"))
}

/// Entry point for the hidden `--worker` CLI mode: parses the
/// remaining arguments, runs the batch against stdout, and maps errors
/// to exit code 2 (the pool treats a nonzero exit before `done` as a
/// crash of the in-flight execution).
pub fn worker_main(argv: impl Iterator<Item = String>) -> ExitCode {
    let spec = match parse_worker_args(argv) {
        Ok(spec) => spec,
        Err(msg) => {
            eprintln!("c11campaign --worker: {msg}");
            return ExitCode::from(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    match spec.run(&mut out) {
        Ok(_) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("c11campaign --worker: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkerSpec {
        WorkerSpec {
            target: "rwlock-buggy".to_string(),
            seed: 0xC11,
            policy: Policy::C11Tester,
            mix: Some("random:2,pct2:1".to_string()),
            first_index: 32,
            executions: 8,
            stop_on_first_bug: false,
            emit_metrics: false,
            profile_phases: false,
            collect_coverage: false,
            thread_pool: true,
            memory_limit: false,
        }
    }

    #[test]
    fn args_round_trip_through_the_parser() {
        let spec = spec();
        let parsed = parse_worker_args(spec.to_args().into_iter().skip(1)).expect("parses");
        assert_eq!(parsed, spec);
        let mut minimal = spec.clone();
        minimal.mix = None;
        minimal.stop_on_first_bug = true;
        let parsed = parse_worker_args(minimal.to_args().into_iter().skip(1)).expect("parses");
        assert_eq!(parsed, minimal);
        let mut diagnostic = spec.clone();
        diagnostic.emit_metrics = true;
        diagnostic.profile_phases = true;
        diagnostic.collect_coverage = true;
        diagnostic.thread_pool = false;
        diagnostic.memory_limit = true;
        let parsed = parse_worker_args(diagnostic.to_args().into_iter().skip(1)).expect("parses");
        assert_eq!(parsed, diagnostic);
    }

    #[test]
    fn parser_rejects_incomplete_and_unknown_args() {
        assert!(parse_worker_args(std::iter::empty()).is_err());
        let err = parse_worker_args(["--bogus".to_string()].into_iter()).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        let err =
            parse_worker_args(["--target".to_string(), "rwlock-buggy".to_string()].into_iter())
                .unwrap_err();
        assert!(err.contains("--seed"), "{err}");
    }

    #[test]
    fn worker_batch_reproduces_the_in_process_index_range() {
        use crate::protocol::{parse_frame, read_frame, Frame};
        use c11tester::TestReport;

        let _gate = crate::coverage_gate_lock();
        let spec = spec();
        let mut buf = Vec::new();
        let reason = spec.run(&mut buf).expect("runs");
        assert_eq!(reason, StopReason::BudgetExhausted);

        // Decode the stream and aggregate it like the pool does.
        let mut reader = std::io::BufReader::new(&buf[..]);
        let mut wired = TestReport::default();
        let mut saw_done = false;
        while let Some(payload) = read_frame(&mut reader).expect("frame") {
            match parse_frame(&payload).expect("parses") {
                Frame::Exec(report) => wired.absorb(&report),
                Frame::Metrics(_) => panic!("metrics frame without --emit-metrics"),
                Frame::Coverage(_) => panic!("coverage frame without --coverage"),
                Frame::Done(r) => {
                    assert_eq!(r, StopReason::BudgetExhausted);
                    saw_done = true;
                }
            }
        }
        assert!(saw_done, "stream must terminate with a done frame");

        // Reference: the same global index range run directly.
        let config = spec.config().expect("valid config");
        let mut model = Model::for_shard_from(config, spec.first_index, 1);
        let mut direct = TestReport::default();
        for _ in 0..spec.executions {
            direct.absorb(&model.run(|| {
                c11tester_workloads::ds::rwlock_buggy::run_buggy();
            }));
        }
        assert_eq!(wired, direct);
    }

    #[test]
    fn emit_metrics_streams_a_batch_metrics_frame_before_done() {
        use crate::protocol::{parse_frame, read_frame, Frame};

        let mut spec = spec();
        spec.emit_metrics = true;
        let mut buf = Vec::new();
        spec.run(&mut buf).expect("runs");

        let mut reader = std::io::BufReader::new(&buf[..]);
        let mut metrics = None;
        let mut execs = 0u64;
        let mut done_after_metrics = false;
        while let Some(payload) = read_frame(&mut reader).expect("frame") {
            match parse_frame(&payload).expect("parses") {
                Frame::Exec(_) => execs += 1,
                Frame::Metrics(m) => metrics = Some(m),
                Frame::Coverage(_) => panic!("coverage frame without --coverage"),
                Frame::Done(_) => done_after_metrics = metrics.is_some(),
            }
        }
        assert_eq!(execs, spec.executions);
        assert!(done_after_metrics, "metrics frame must precede done");
        let metrics = metrics.expect("metrics frame present");
        // The batch's alloc counters must cover every execution: the
        // first provisions fresh state, the rest recycle it.
        assert_eq!(
            metrics.alloc.fresh_executions + metrics.alloc.recycled_executions,
            spec.executions
        );
    }

    #[test]
    fn coverage_batch_ships_the_direct_fold_as_one_frame() {
        use crate::protocol::{parse_frame, read_frame, Frame};

        let _gate = crate::coverage_gate_lock();
        let mut spec = spec();
        spec.collect_coverage = true;
        let mut buf = Vec::new();
        spec.run(&mut buf).expect("runs");
        c11tester_telemetry::set_coverage(false);

        let mut reader = std::io::BufReader::new(&buf[..]);
        let mut shipped = None;
        let mut done_after_coverage = false;
        while let Some(payload) = read_frame(&mut reader).expect("frame") {
            match parse_frame(&payload).expect("parses") {
                Frame::Exec(report) => {
                    // Exec frames never carry coverage; it travels batched.
                    assert_eq!(report.coverage, Default::default());
                }
                Frame::Metrics(_) => {}
                Frame::Coverage(map) => shipped = Some(map),
                Frame::Done(_) => done_after_coverage = shipped.is_some(),
            }
        }
        assert!(done_after_coverage, "coverage frame must precede done");
        let shipped = shipped.expect("coverage frame present");

        // Reference: the same index range run directly with coverage on.
        c11tester_telemetry::set_coverage(true);
        let config = spec.config().expect("valid config");
        let mut model = Model::for_shard_from(config, spec.first_index, 1);
        let mut direct = CoverageMap::new();
        for _ in 0..spec.executions {
            let report = model.run(|| {
                c11tester_workloads::ds::rwlock_buggy::run_buggy();
            });
            direct.record(report.execution_index, &report.coverage, &report.races);
        }
        c11tester_telemetry::set_coverage(false);

        assert_eq!(shipped, direct);
        assert_eq!(shipped.collected_executions(), spec.executions);
        assert!(shipped.distinct_total() > 0, "workload explores behaviors");
    }
}
