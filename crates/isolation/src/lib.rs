//! # c11tester-isolation
//!
//! Process-level isolation for campaigns: a **fork/exec worker pool**
//! in which every batch of executions runs in a child process, so a
//! program under test that segfaults, aborts, or wedges takes down
//! one child — never the campaign.
//!
//! The C11Tester paper evaluates real, crash-prone concurrent
//! programs; for those, the crash *is* the detection signal. The
//! in-process [`c11tester_campaign::Campaign`] cannot express that —
//! one SIGSEGV kills every worker thread and all accumulated state.
//! The [`ForkServer`] implements the campaign's [`Executor`]
//! abstraction differently:
//!
//! 1. the global execution-index range is partitioned into contiguous
//!    **batches**;
//! 2. each batch is handed to a child process that re-enters the
//!    campaign binary via the hidden `c11campaign --worker` mode,
//!    identified **purely by `(target, seed, index range)`** — no
//!    closures, no shared memory — so the child runs exactly the
//!    executions an in-process campaign would have run at those
//!    indices ([`worker::WorkerSpec`]);
//! 3. the child streams one length-prefixed canonical-JSON frame per
//!    completed execution back over its stdout pipe
//!    ([`protocol`]), and the parent folds them into the ordinary
//!    mergeable [`c11tester::TestReport`];
//! 4. a child that dies before its terminal `done` frame was
//!    mid-execution: the parent triages the death (signal, exit code,
//!    or `exec_timeout` kill) into a [`CrashRecord`] at global index
//!    `batch start + frames received`, then **respawns the remainder**
//!    of the batch, so one crash costs one child — the budget always
//!    completes.
//!
//! Determinism is preserved end to end: whether execution `i` crashes
//! is a pure function of `(config, i)` (the same schedule replays the
//! same crash), completed executions aggregate order-independently,
//! and crash records sort by index — so the final
//! [`CampaignReport`](c11tester_campaign::CampaignReport) and its
//! `c11campaign/v4` canonical JSON are **byte-identical across worker
//! counts and batch sizes**, and byte-identical to an in-process run
//! on any healthy target.
//!
//! ```no_run
//! use c11tester::Config;
//! use c11tester_campaign::{targets, Campaign, CampaignBudget};
//! use c11tester_isolation::ForkServer;
//!
//! let target = targets::find("null-deref-buggy").unwrap();
//! let fork = ForkServer::current_exe().unwrap(); // or the c11campaign path
//! let report = Campaign::new(Config::new().with_seed(7))
//!     .with_workers(4)
//!     .run_target(&fork, &target, &CampaignBudget::executions(1000))
//!     .unwrap();
//! println!("{} crashes survived", report.crashes.len());
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod protocol;
pub mod worker;

/// Serializes tests that either flip the process-global coverage gate
/// or compare `TestReport`s built from live executions (which the gate
/// perturbs). Lib tests share one process, so they must not interleave.
#[cfg(test)]
pub(crate) fn coverage_gate_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub use worker::{parse_worker_args, worker_main, WorkerSpec};

use crate::protocol::{read_frame, Frame};
use c11tester::{Config, TestReport, ThreadSpawnStats};
use c11tester_campaign::targets::Target;
use c11tester_campaign::{
    CampaignBudget, CrashKind, CrashRecord, Executor, RangeOutcome, StopReason,
};
use c11tester_telemetry::{CampaignMetrics, ForkHealth, WorkerMetrics};
use std::collections::VecDeque;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Default executions per child process.
///
/// Large enough to amortize process startup on healthy targets, small
/// enough that a crash (which costs one respawn of the remainder)
/// stays cheap.
pub const DEFAULT_BATCH_SIZE: u64 = 64;

/// The fork/exec campaign backend: an [`Executor`] whose workers are
/// child processes re-entering the campaign binary in `--worker` mode.
///
/// See the [crate docs](crate) for the protocol and the determinism
/// contract.
#[derive(Clone, Debug)]
pub struct ForkServer {
    program: PathBuf,
    batch_size: u64,
    exec_timeout: Option<Duration>,
}

impl ForkServer {
    /// Creates a fork server whose children run `program` — a binary
    /// that understands `--worker` (in practice: `c11campaign`).
    pub fn new(program: impl Into<PathBuf>) -> Self {
        ForkServer {
            program: program.into(),
            batch_size: DEFAULT_BATCH_SIZE,
            exec_timeout: None,
        }
    }

    /// A fork server re-entering the *current* binary — the right
    /// default when the campaign process is `c11campaign` itself.
    pub fn current_exe() -> Result<ForkServer, String> {
        std::env::current_exe()
            .map(ForkServer::new)
            .map_err(|e| format!("cannot resolve current executable: {e}"))
    }

    /// Sets the number of executions per child process.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn with_batch_size(mut self, batch_size: u64) -> Self {
        assert!(batch_size > 0, "batches need at least one execution");
        self.batch_size = batch_size;
        self
    }

    /// Caps the wall-clock time a child may spend on a single
    /// execution (measured frame-to-frame, so it also covers child
    /// startup). A child exceeding it is killed and the in-flight
    /// execution recorded as a [`CrashKind::Timeout`] crash.
    ///
    /// `None` (the default) waits forever — fine for targets that
    /// always terminate, fatal for `spin-forever`-shaped bugs.
    pub fn with_exec_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.exec_timeout = timeout;
        self
    }

    /// The worker binary children re-enter.
    pub fn program(&self) -> &std::path::Path {
        &self.program
    }

    /// Runs one child over `[first, first + executions)` and folds its
    /// frames into `report`. `Ok(Finished)` means the `done` frame
    /// arrived; `Ok(Died {..})` is a triaged crash of the execution at
    /// `first + completed`; `Ok(DeadlineExpired {..})` means the
    /// campaign deadline passed while the child was working (the child
    /// is killed, completed frames are kept, nothing is recorded as a
    /// crash); `Err` is an infrastructure failure (cannot spawn,
    /// protocol violation from a live child).
    fn run_child(
        &self,
        spec: &WorkerSpec,
        deadline_at: Option<Instant>,
        report: &mut TestReport,
        health: &mut ForkHealth,
        threads: &mut ThreadSpawnStats,
    ) -> Result<ChildOutcome, String> {
        let mut child = Command::new(&self.program)
            .args(spec.to_args())
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn worker `{}`: {e}", self.program.display()))?;
        health.spawns += 1;
        let mut last_frame_at = Instant::now();
        let stdout = child.stdout.take().expect("stdout was piped");
        let (tx, rx) = mpsc::channel::<std::io::Result<String>>();
        let reader = std::thread::spawn(move || {
            let mut input = BufReader::new(stdout);
            loop {
                match read_frame(&mut input) {
                    Ok(Some(payload)) => {
                        if tx.send(Ok(payload)).is_err() {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });
        let mut completed = 0u64;
        let outcome = loop {
            // Wait for the next frame, bounded by the per-execution
            // timeout and/or the campaign deadline (whichever is
            // nearer). Without either, wait forever.
            let wait = match (self.exec_timeout, deadline_at) {
                (None, None) => None,
                (timeout, Some(at)) => {
                    let remaining = at.saturating_duration_since(Instant::now());
                    Some(timeout.map_or(remaining, |t| t.min(remaining)))
                }
                (Some(t), None) => Some(t),
            };
            let msg = match wait {
                Some(timeout) => match rx.recv_timeout(timeout) {
                    Ok(msg) => Some(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        // Distinguish "this execution overran its
                        // budget" from "the whole campaign ran out of
                        // time": only the former is a crash.
                        let deadline_hit = deadline_at.is_some_and(|at| Instant::now() >= at);
                        break Ok(if deadline_hit {
                            ChildOutcome::DeadlineExpired
                        } else {
                            health.timeout_kills += 1;
                            ChildOutcome::Died {
                                completed,
                                kind: CrashKind::Timeout,
                            }
                        });
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => None,
                },
                None => rx.recv().ok(),
            };
            match msg {
                Some(Ok(payload)) => {
                    // Frame round-trip time: the gap between spawn (or
                    // the previous frame) and this frame's arrival.
                    let rtt = last_frame_at.elapsed().as_nanos() as u64;
                    last_frame_at = Instant::now();
                    health.frames += 1;
                    health.frame_rtt_nanos_total += rtt;
                    health.frame_rtt_nanos_max = health.frame_rtt_nanos_max.max(rtt);
                    match protocol::parse_frame(&payload) {
                        Ok(Frame::Exec(exec)) => {
                            report.absorb(&exec);
                            completed += 1;
                        }
                        Ok(Frame::Metrics(m)) => {
                            // Diagnostic-only: alloc, phase, and thread
                            // counters are excluded from stats equality
                            // and from canonical JSON, so folding them
                            // in never perturbs the determinism
                            // contract.
                            report.total_stats.alloc.absorb(&m.alloc);
                            report.total_stats.phase.absorb(&m.phase);
                            report.total_stats.mograph_perf.absorb(&m.graph);
                            threads.pooled_dispatches += m.threads.pooled_dispatches;
                            threads.fresh_spawns += m.threads.fresh_spawns;
                        }
                        Ok(Frame::Coverage(map)) => {
                            // Diagnostic-only, and mergeable: the
                            // child's batched fold aggregates to the
                            // exact map an in-process run would have
                            // built from the same executions.
                            report.coverage.merge(&map);
                        }
                        Ok(Frame::Done(reason)) => {
                            let _ = child.wait();
                            break Ok(ChildOutcome::Finished(reason));
                        }
                        Err(e) => {
                            // A live child speaking garbage is a bug in
                            // the harness, not in the program under
                            // test.
                            let _ = child.kill();
                            let _ = child.wait();
                            break Err(format!("worker protocol violation: {e}"));
                        }
                    }
                }
                // Stream ended (EOF or cut mid-frame) without `done`:
                // the child died mid-execution. Triage the death.
                Some(Err(_)) | None => {
                    let status = child
                        .wait()
                        .map_err(|e| format!("cannot reap worker: {e}"))?;
                    break Ok(ChildOutcome::Died {
                        completed,
                        kind: triage(status),
                    });
                }
            }
        };
        let _ = reader.join();
        outcome
    }

    /// Processes one batch, respawning children past crashes until the
    /// range is covered or an early stop triggers.
    fn run_batch(
        &self,
        config: &Config,
        target: &Target,
        start: u64,
        len: u64,
        budget: &CampaignBudget,
        deadline_at: Option<Instant>,
    ) -> Result<BatchResult, String> {
        let mut result = BatchResult {
            aggregate: TestReport::default(),
            crashes: Vec::new(),
            stop_reason: StopReason::BudgetExhausted,
            health: ForkHealth::default(),
            threads: ThreadSpawnStats::default(),
        };
        let end = start + len;
        let mut cursor = start;
        // Consecutive children that exited (not signal/timeout) without
        // completing a single execution: that is the signature of a
        // broken worker binary, not of a crashing target — escalate to
        // an infrastructure error instead of spawning one child per
        // remaining index.
        let mut barren_exits = 0u32;
        const MAX_BARREN_EXITS: u32 = 3;
        while cursor < end {
            let spec = WorkerSpec {
                target: target.name.to_string(),
                seed: config.seed,
                policy: config.policy,
                mix: config.mix.as_ref().map(|m| m.spec()),
                first_index: cursor,
                executions: end - cursor,
                stop_on_first_bug: budget.stop_on_first_bug,
                // Children always report batch alloc counters (one
                // tiny frame per batch); phase profiling is forwarded
                // only when the parent itself is profiling.
                emit_metrics: true,
                profile_phases: c11tester_telemetry::profiling_enabled(),
                collect_coverage: c11tester_telemetry::coverage_enabled(),
                thread_pool: config.thread_pool,
                memory_limit: config.prune.limits_memory(),
            };
            if cursor != start {
                // Every spawn past the first covers a post-crash
                // remainder of the batch.
                result.health.respawns += 1;
            }
            match self.run_child(
                &spec,
                deadline_at,
                &mut result.aggregate,
                &mut result.health,
                &mut result.threads,
            )? {
                ChildOutcome::Finished(reason) => {
                    result.stop_reason = reason;
                    break;
                }
                ChildOutcome::DeadlineExpired => {
                    result.stop_reason = StopReason::Deadline;
                    break;
                }
                ChildOutcome::Died { completed, kind } => {
                    let index = cursor + completed;
                    if index >= end {
                        // The child died *after* completing every
                        // execution in its range (e.g. killed between
                        // its last exec frame and the `done` frame):
                        // nothing was in flight, so there is no crash
                        // to record.
                        break;
                    }
                    if matches!(kind, CrashKind::Exit(_)) && completed == 0 {
                        barren_exits += 1;
                        if barren_exits >= MAX_BARREN_EXITS {
                            return Err(format!(
                                "worker `{}` exited {barren_exits} times in a row without \
                                 completing a single execution — broken worker binary? \
                                 (it must support `--worker`; run it by hand to see its error)",
                                self.program.display(),
                            ));
                        }
                    } else {
                        barren_exits = 0;
                    }
                    result.crashes.push(CrashRecord {
                        index,
                        strategy: config.strategy_for(index).spec(),
                        kind,
                    });
                    cursor = index + 1;
                }
            }
        }
        Ok(result)
    }
}

/// How one child process ended.
enum ChildOutcome {
    /// The terminal `done` frame arrived.
    Finished(StopReason),
    /// The child died after streaming `completed` exec frames.
    Died { completed: u64, kind: CrashKind },
    /// The campaign deadline expired while the child was working; the
    /// child was killed and its in-flight execution is *not* a crash.
    DeadlineExpired,
}

struct BatchResult {
    aggregate: TestReport,
    crashes: Vec<CrashRecord>,
    stop_reason: StopReason,
    health: ForkHealth,
    threads: ThreadSpawnStats,
}

#[cfg(unix)]
fn triage(status: std::process::ExitStatus) -> CrashKind {
    use std::os::unix::process::ExitStatusExt;
    match status.signal() {
        Some(sig) => CrashKind::Signal(sig),
        // Exit 0 without a `done` frame is a protocol violation; keep
        // it visible as an exit-crash rather than silently dropping it.
        None => CrashKind::Exit(status.code().unwrap_or(-1)),
    }
}

#[cfg(not(unix))]
fn triage(status: std::process::ExitStatus) -> CrashKind {
    CrashKind::Exit(status.code().unwrap_or(-1))
}

impl Executor for ForkServer {
    fn name(&self) -> &'static str {
        "fork-server"
    }

    fn run_range(
        &self,
        config: &Config,
        workers: usize,
        target: &Target,
        first_index: u64,
        budget: &CampaignBudget,
    ) -> Result<RangeOutcome, String> {
        let start = Instant::now();
        let deadline_at = budget.deadline.map(|d| start + d);
        let end_index = first_index.saturating_add(budget.max_executions);
        let mut queue = VecDeque::new();
        let mut cursor = first_index;
        while cursor < end_index {
            let len = self.batch_size.min(end_index - cursor);
            queue.push_back((cursor, len));
            cursor += len;
        }
        let workers = workers.clamp(1, queue.len().max(1));
        let queue = Mutex::new(queue);
        let bug_stop = AtomicBool::new(false);
        let deadline_stop = AtomicBool::new(false);
        let failed = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<Result<BatchResult, String>>();
        // Diagnostic side channel: one message per pool thread at exit.
        let (mtx, mrx) = mpsc::channel::<WorkerMetrics>();

        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let mtx = mtx.clone();
                let queue = &queue;
                let (bug_stop, deadline_stop, failed) = (&bug_stop, &deadline_stop, &failed);
                scope.spawn(move || {
                    let busy_start = Instant::now();
                    let mut completed = 0u64;
                    let mut threads = ThreadSpawnStats::default();
                    loop {
                        if bug_stop.load(Ordering::Relaxed) || failed.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Some(deadline) = budget.deadline {
                            if start.elapsed() >= deadline {
                                deadline_stop.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        let Some((batch_start, len)) =
                            queue.lock().expect("queue lock").pop_front()
                        else {
                            break;
                        };
                        let result =
                            self.run_batch(config, target, batch_start, len, budget, deadline_at);
                        match &result {
                            Ok(batch) if batch.stop_reason == StopReason::FirstBug => {
                                bug_stop.store(true, Ordering::Relaxed);
                            }
                            Ok(batch) if batch.stop_reason == StopReason::Deadline => {
                                deadline_stop.store(true, Ordering::Relaxed);
                            }
                            Err(_) => failed.store(true, Ordering::Relaxed),
                            Ok(_) => {}
                        }
                        if let Ok(batch) = &result {
                            completed += batch.aggregate.executions;
                            threads.pooled_dispatches += batch.threads.pooled_dispatches;
                            threads.fresh_spawns += batch.threads.fresh_spawns;
                        }
                        if tx.send(result).is_err() {
                            break;
                        }
                    }
                    let _ = mtx.send(WorkerMetrics {
                        worker: w as u64,
                        executions: completed,
                        busy_nanos: busy_start.elapsed().as_nanos() as u64,
                        pooled_dispatches: threads.pooled_dispatches,
                        fresh_spawns: threads.fresh_spawns,
                    });
                });
            }
            drop(tx);
            drop(mtx);
        });

        let mut aggregate = TestReport::default();
        let mut crashes = Vec::new();
        let mut fork_health = ForkHealth::default();
        while let Ok(result) = rx.recv() {
            let batch = result?;
            aggregate.merge(&batch.aggregate);
            crashes.extend(batch.crashes);
            fork_health.absorb(&batch.health);
        }
        crashes.sort_by_key(|c| c.index);
        let mut worker_metrics: Vec<WorkerMetrics> = mrx.iter().collect();
        worker_metrics.sort_by_key(|m| m.worker);
        let stop_reason = if bug_stop.load(Ordering::Relaxed) {
            StopReason::FirstBug
        } else if deadline_stop.load(Ordering::Relaxed) {
            StopReason::Deadline
        } else {
            StopReason::BudgetExhausted
        };
        let metrics = CampaignMetrics {
            phase: aggregate.total_stats.phase,
            graph: aggregate.total_stats.mograph_perf.to_metrics(),
            workers: worker_metrics,
            fork: fork_health,
            executions: aggregate.executions,
            wall_nanos: start.elapsed().as_nanos() as u64,
            ..CampaignMetrics::default()
        };
        Ok(RangeOutcome {
            aggregate,
            crashes,
            stop_reason,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_covers_program_batch_and_timeout() {
        let fork = ForkServer::new("/bin/true")
            .with_batch_size(16)
            .with_exec_timeout(Some(Duration::from_millis(250)));
        assert_eq!(fork.program(), std::path::Path::new("/bin/true"));
        assert_eq!(fork.batch_size, 16);
        assert_eq!(fork.exec_timeout, Some(Duration::from_millis(250)));
        assert_eq!(fork.name(), "fork-server");
    }

    #[test]
    fn spawn_failure_is_an_error_not_a_crash() {
        // A missing worker binary is an infrastructure failure: the
        // pool must report it instead of fabricating crash records.
        let fork = ForkServer::new("/nonexistent/worker-binary");
        let target = c11tester_campaign::targets::find("rwlock-buggy").expect("target");
        let err = fork
            .run_range(
                &Config::new(),
                2,
                &target,
                0,
                &CampaignBudget::executions(4),
            )
            .unwrap_err();
        assert!(err.contains("cannot spawn worker"), "{err}");
    }

    #[test]
    fn a_worker_binary_that_never_completes_an_execution_is_an_error() {
        // `/bin/false` exits 1 with zero frames every time: that is a
        // broken worker binary, and must escalate to an infrastructure
        // error after a short streak instead of spawning one child per
        // budgeted execution.
        let program = std::path::Path::new("/bin/false");
        if !program.exists() {
            return; // exotic container; the contract is covered on CI
        }
        let fork = ForkServer::new(program);
        let target = c11tester_campaign::targets::find("rwlock-buggy").expect("target");
        let err = fork
            .run_range(
                &Config::new(),
                1,
                &target,
                0,
                &CampaignBudget::executions(1_000),
            )
            .unwrap_err();
        assert!(
            err.contains("without completing a single execution"),
            "{err}"
        );
    }

    // End-to-end fork-server behavior (real children, crashes,
    // timeouts, deadlines) is exercised in
    // crates/adaptive/tests/isolation.rs, where the `c11campaign`
    // binary with its `--worker` mode exists.
}
