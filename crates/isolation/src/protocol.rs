//! The parent↔child wire protocol: length-prefixed canonical JSON
//! frames.
//!
//! A fork-server child streams one frame per completed execution plus
//! a terminal `done` frame over its stdout pipe. Frames are
//! **length-prefixed** (`<decimal byte length>\n<payload>\n`) so the
//! parent can distinguish a cleanly terminated stream from one cut
//! mid-write by a dying child, and **canonical** — objects are emitted
//! in fixed field order by a hand-rolled emitter, exactly like the
//! campaign report JSON (the offline build has no serde).
//!
//! The `exec` frame is a *lossless* encoding of
//! [`c11tester::ExecutionReport`]: every field that feeds
//! [`c11tester::TestReport::absorb`] round-trips bit-for-bit, which is
//! what makes a fork-isolated campaign aggregate byte-identical to an
//! in-process one. The parent parses frames with the dependency-free
//! [`JsonValue`] reader from `c11tester_campaign::baseline`, and the
//! string tables (escaping, enum names) are shared with the canonical
//! report emitter via [`c11tester_campaign::wire`] so the two can
//! never drift apart.
//!
//! **Caveat**: frames travel on the child's **stdout**. The built-in
//! workloads never write to stdout (the model API has no output
//! surface), but a target that did would corrupt the framing; the
//! parent surfaces that as a protocol-violation error (bounded by
//! [`MAX_FRAME_LEN`]) rather than silently mis-aggregating.

use c11tester::{
    BehaviorStats, CoverageMap, ExecutionReport, Failure, RaceKey, RaceReport, ThreadSpawnStats,
};
use c11tester_campaign::baseline::JsonValue;
use c11tester_campaign::wire::{
    access_kind_name, esc, parse_access_kind, parse_race_kind, race_kind_name,
};
use c11tester_campaign::StopReason;
use c11tester_core::{AllocStats, ExecStats, MoGraphPerfStats, MoGraphStats, ObjId, ThreadId};
use c11tester_telemetry::{PhaseProfile, PHASE_COUNT};
use std::io::{BufRead, Write};

/// Upper bound on a single frame's payload. Real exec frames are a
/// few KB; the cap keeps a corrupted length line (e.g. a target that
/// wrote to the shared stdout) from triggering a huge allocation in
/// the parent.
pub const MAX_FRAME_LEN: usize = 1 << 24;

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame and flushes, so the parent sees
/// every completed execution even if the *next* one kills the child.
pub fn write_frame(out: &mut impl Write, payload: &str) -> std::io::Result<()> {
    write!(out, "{}\n{}\n", payload.len(), payload)?;
    out.flush()
}

/// Reads one frame. Returns `Ok(None)` on clean end-of-stream (the
/// child closed its pipe *between* frames); a stream cut mid-frame is
/// an error, which the pool treats like the crash it accompanies.
pub fn read_frame(input: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut len_line = String::new();
    if input.read_line(&mut len_line)? == 0 {
        return Ok(None);
    }
    let len: usize = len_line
        .trim_end()
        .parse()
        .map_err(|_| bad_data(format!("bad frame length line {len_line:?}")))?;
    if len > MAX_FRAME_LEN {
        return Err(bad_data(format!(
            "frame length {len} exceeds {MAX_FRAME_LEN}"
        )));
    }
    let mut payload = vec![0u8; len + 1]; // + trailing newline
    std::io::Read::read_exact(input, &mut payload)?;
    if payload.pop() != Some(b'\n') {
        return Err(bad_data("frame missing trailing newline".to_string()));
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| bad_data("frame payload is not UTF-8".to_string()))
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------
// Frame payloads
// ---------------------------------------------------------------------

/// One decoded frame from a worker child.
#[derive(Clone, Debug)]
pub enum Frame {
    /// A completed execution's full report (boxed: a report is two
    /// orders of magnitude larger than the `done` variant).
    Exec(Box<ExecutionReport>),
    /// Per-batch diagnostic counters, sent once just before `done`
    /// when the batch ran with [`crate::WorkerSpec::emit_metrics`].
    Metrics(BatchMetrics),
    /// The batch's merged behavior-coverage map, sent once just before
    /// `done` when the batch ran with
    /// [`crate::WorkerSpec::collect_coverage`]. Batched rather than
    /// per-execution: [`CoverageMap::merge`] is order-independent, so
    /// shipping the child's fold cannot change the parent's aggregate.
    Coverage(CoverageMap),
    /// The batch finished; no further frames follow.
    Done(StopReason),
}

/// Per-batch diagnostic counters a worker child reports just before
/// its `done` frame. Both blocks are *diagnostic*: the parent folds
/// them into the aggregate's `alloc`/`phase` stats, which are excluded
/// from stats equality and from the default canonical JSON — so the
/// frame can never perturb the determinism contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchMetrics {
    /// Allocation counters accumulated over the batch (the child's
    /// recycled-vs-fresh provisioning, invisible to the parent before
    /// this frame existed — `c11campaign --alloc-stats --isolate`
    /// rides on it).
    pub alloc: AllocStats,
    /// Phase-timing profile accumulated over the batch. Empty unless
    /// the child ran with `--profile-phases`.
    pub phase: PhaseProfile,
    /// Model-thread provisioning counters for the batch: pooled
    /// re-dispatches vs fresh OS-thread spawns. The thread-pool analog
    /// of `alloc`'s recycled-vs-fresh split; a warm child shows
    /// `fresh_spawns` flat while `pooled_dispatches` grows.
    pub threads: ThreadSpawnStats,
    /// Mo-graph maintenance diagnostics accumulated over the batch
    /// (order-reorder/fast-path/compaction counters; like `alloc` and
    /// `phase`, excluded from stats equality and canonical JSON).
    pub graph: MoGraphPerfStats,
}

/// Encodes an `exec` frame payload.
pub fn exec_payload(report: &ExecutionReport) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"frame\":\"exec\"");
    out.push_str(&format!(",\"execution\":{}", report.execution_index));
    out.push_str(&format!(",\"strategy\":\"{}\"", esc(&report.strategy)));
    out.push_str(",\"races\":[");
    for (i, r) in report.races.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "{{\"label\":\"{}\",\"kind\":\"{}\",\"obj\":{},\"offset\":{},",
                "\"current_tid\":{},\"current_kind\":\"{}\",\"prior_tid\":{},",
                "\"prior_atomic\":{}}}"
            ),
            esc(&r.label),
            race_kind_name(r.kind),
            r.obj.0,
            r.offset,
            r.current_tid.index(),
            access_kind_name(r.current_kind),
            r.prior_tid.index(),
            r.prior_atomic,
        ));
    }
    out.push(']');
    match &report.failure {
        None => out.push_str(",\"failure\":null"),
        Some(f) => {
            let (message, events) = match f {
                Failure::Deadlock => (String::new(), String::from("null")),
                Failure::Panic(msg) => (esc(msg), String::from("null")),
                Failure::TooManyEvents(n) => (String::new(), n.to_string()),
                Failure::Infra(msg) => (esc(msg), String::from("null")),
            };
            out.push_str(&format!(
                ",\"failure\":{{\"kind\":\"{}\",\"message\":\"{message}\",\"events\":{events}}}",
                f.kind_name(),
            ));
        }
    }
    out.push_str(&format!(
        ",\"elided_volatile_races\":{}",
        report.elided_volatile_races
    ));
    let s = &report.stats;
    out.push_str(&format!(
        concat!(
            ",\"stats\":{{\"atomic_loads\":{},\"atomic_stores\":{},\"rmws\":{},",
            "\"fences\":{},\"sync_ops\":{},\"normal_accesses\":{},",
            "\"volatile_accesses\":{},\"candidates_rejected\":{},",
            "\"pruned_stores\":{},\"pruned_loads\":{},\"pruned_fences\":{},",
            "\"prune_passes\":{},",
            "\"mograph\":{{\"edges_added\":{},\"edges_redundant\":{},",
            "\"merges\":{},\"rmw_edges\":{}}}}}"
        ),
        s.atomic_loads,
        s.atomic_stores,
        s.rmws,
        s.fences,
        s.sync_ops,
        s.normal_accesses,
        s.volatile_accesses,
        s.candidates_rejected,
        s.pruned_stores,
        s.pruned_loads,
        s.pruned_fences,
        s.prune_passes,
        s.mograph.edges_added,
        s.mograph.edges_redundant,
        s.mograph.merges,
        s.mograph.rmw_edges,
    ));
    out.push('}');
    out
}

/// Encodes a `metrics` frame payload.
pub fn metrics_payload(m: &BatchMetrics) -> String {
    let (nanos, calls) = m.phase.raw();
    format!(
        concat!(
            "{{\"frame\":\"metrics\",",
            "\"alloc\":{{\"fresh_executions\":{},\"recycled_executions\":{},",
            "\"clock_spills\":{}}},",
            "\"phase\":{{\"nanos\":{},\"calls\":{}}},",
            "\"threads\":{{\"pooled_dispatches\":{},\"fresh_spawns\":{}}},",
            "\"graph\":{{\"order_reorders\":{},\"reorder_nodes\":{},",
            "\"reach_fast_negative\":{},\"reach_cv_checks\":{},\"compactions\":{},",
            "\"compacted_nodes\":{},\"peak_live_nodes\":{}}}}}"
        ),
        m.alloc.fresh_executions,
        m.alloc.recycled_executions,
        m.alloc.clock_spills,
        u64_array(&nanos),
        u64_array(&calls),
        m.threads.pooled_dispatches,
        m.threads.fresh_spawns,
        m.graph.order_reorders,
        m.graph.reorder_nodes,
        m.graph.reach_fast_negative,
        m.graph.reach_cv_checks,
        m.graph.compactions,
        m.graph.compacted_nodes,
        m.graph.peak_live_nodes,
    )
}

fn u64_array(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Encodes a `coverage` frame payload. Edge and interleaving behaviors
/// travel as flat number rows (`[key..., first_execution,
/// occurrences]`); iteration order is the map's `BTreeMap` order, so
/// the payload is byte-stable for a given map.
pub fn coverage_payload(map: &CoverageMap) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"frame\":\"coverage\"");
    out.push_str(&format!(
        ",\"collected_executions\":{}",
        map.collected_executions()
    ));
    out.push_str(",\"rf\":[");
    for (i, ((obj, from, to), s)) in map.rf_edges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "[{obj},{from},{to},{},{}]",
            s.first_execution, s.occurrences
        ));
    }
    out.push_str("],\"mo\":[");
    for (i, ((obj, from, to), s)) in map.mo_edges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "[{obj},{from},{to},{},{}]",
            s.first_execution, s.occurrences
        ));
    }
    out.push_str("],\"races\":[");
    for (i, (key, s)) in map.races().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"kind\":\"{}\",\"first_execution\":{},\"occurrences\":{}}}",
            esc(&key.label),
            race_kind_name(key.kind),
            s.first_execution,
            s.occurrences,
        ));
    }
    out.push_str("],\"interleavings\":[");
    for (i, (hash, s)) in map.interleavings().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{hash},{},{}]", s.first_execution, s.occurrences));
    }
    out.push_str("]}");
    out
}

fn coverage_rows<'a>(
    doc: &'a JsonValue,
    key: &str,
    width: usize,
) -> Result<Vec<&'a [JsonValue]>, String> {
    let mut rows = Vec::new();
    for row in doc
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or(format!("missing `{key}` array"))?
    {
        let cells = row.as_array().ok_or(format!("non-array row in `{key}`"))?;
        if cells.len() != width {
            return Err(format!(
                "`{key}` row has {} cells, expected {width}",
                cells.len()
            ));
        }
        rows.push(cells);
    }
    Ok(rows)
}

fn row_u64(cells: &[JsonValue], i: usize, key: &str) -> Result<u64, String> {
    cells[i]
        .as_u64()
        .ok_or(format!("non-integer cell in `{key}`"))
}

fn parse_coverage(doc: &JsonValue) -> Result<CoverageMap, String> {
    let mut map = CoverageMap::new();
    map.add_collected_executions(u64_field(doc, "collected_executions")?);
    for cells in coverage_rows(doc, "rf", 5)? {
        map.absorb_rf_edge(
            (
                row_u64(cells, 0, "rf")?,
                row_u64(cells, 1, "rf")?,
                row_u64(cells, 2, "rf")?,
            ),
            BehaviorStats {
                first_execution: row_u64(cells, 3, "rf")?,
                occurrences: row_u64(cells, 4, "rf")?,
            },
        );
    }
    for cells in coverage_rows(doc, "mo", 5)? {
        map.absorb_mo_edge(
            (
                row_u64(cells, 0, "mo")?,
                row_u64(cells, 1, "mo")?,
                row_u64(cells, 2, "mo")?,
            ),
            BehaviorStats {
                first_execution: row_u64(cells, 3, "mo")?,
                occurrences: row_u64(cells, 4, "mo")?,
            },
        );
    }
    for row in doc
        .get("races")
        .and_then(JsonValue::as_array)
        .ok_or("missing `races` array")?
    {
        map.absorb_race(
            RaceKey {
                label: str_field(row, "label")?.to_string(),
                kind: parse_race_kind(str_field(row, "kind")?)?,
            },
            BehaviorStats {
                first_execution: u64_field(row, "first_execution")?,
                occurrences: u64_field(row, "occurrences")?,
            },
        );
    }
    for cells in coverage_rows(doc, "interleavings", 3)? {
        map.absorb_interleaving(
            row_u64(cells, 0, "interleavings")?,
            BehaviorStats {
                first_execution: row_u64(cells, 1, "interleavings")?,
                occurrences: row_u64(cells, 2, "interleavings")?,
            },
        );
    }
    Ok(map)
}

/// Encodes a `done` frame payload.
pub fn done_payload(stop_reason: StopReason) -> String {
    format!(
        "{{\"frame\":\"done\",\"stop_reason\":\"{}\"}}",
        stop_reason.name()
    )
}

fn parse_stop_reason(name: &str) -> Result<StopReason, String> {
    match name {
        "budget-exhausted" => Ok(StopReason::BudgetExhausted),
        "first-bug" => Ok(StopReason::FirstBug),
        "deadline" => Ok(StopReason::Deadline),
        other => Err(format!("unknown stop reason `{other}`")),
    }
}

fn str_field<'a>(doc: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(JsonValue::as_str)
        .ok_or(format!("missing string `{key}`"))
}

fn u64_field(doc: &JsonValue, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or(format!("missing number `{key}`"))
}

fn bool_field(doc: &JsonValue, key: &str) -> Result<bool, String> {
    match doc.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("missing bool `{key}`")),
    }
}

fn phase_array_field(doc: &JsonValue, key: &str) -> Result<[u64; PHASE_COUNT], String> {
    let arr = doc
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or(format!("missing array `{key}`"))?;
    if arr.len() != PHASE_COUNT {
        return Err(format!(
            "`{key}` has {} entries, expected {PHASE_COUNT}",
            arr.len()
        ));
    }
    let mut out = [0u64; PHASE_COUNT];
    for (slot, v) in out.iter_mut().zip(arr) {
        *slot = v.as_u64().ok_or(format!("non-integer entry in `{key}`"))?;
    }
    Ok(out)
}

fn parse_stats(doc: &JsonValue) -> Result<ExecStats, String> {
    let mg = doc.get("mograph").ok_or("missing `mograph`")?;
    Ok(ExecStats {
        atomic_loads: u64_field(doc, "atomic_loads")?,
        atomic_stores: u64_field(doc, "atomic_stores")?,
        rmws: u64_field(doc, "rmws")?,
        fences: u64_field(doc, "fences")?,
        sync_ops: u64_field(doc, "sync_ops")?,
        normal_accesses: u64_field(doc, "normal_accesses")?,
        volatile_accesses: u64_field(doc, "volatile_accesses")?,
        candidates_rejected: u64_field(doc, "candidates_rejected")?,
        pruned_stores: u64_field(doc, "pruned_stores")?,
        pruned_loads: u64_field(doc, "pruned_loads")?,
        pruned_fences: u64_field(doc, "pruned_fences")?,
        prune_passes: u64_field(doc, "prune_passes")?,
        mograph: MoGraphStats {
            edges_added: u64_field(mg, "edges_added")?,
            edges_redundant: u64_field(mg, "edges_redundant")?,
            merges: u64_field(mg, "merges")?,
            rmw_edges: u64_field(mg, "rmw_edges")?,
        },
        // Alloc, phase, and graph diagnostics are not carried per
        // execution: they travel batched in the `metrics` frame (all
        // are excluded from stats equality and default canonical JSON).
        mograph_perf: Default::default(),
        alloc: Default::default(),
        phase: Default::default(),
    })
}

fn parse_failure(doc: &JsonValue) -> Result<Option<Failure>, String> {
    let failure = doc.get("failure").ok_or("missing `failure`")?;
    if *failure == JsonValue::Null {
        return Ok(None);
    }
    let kind = str_field(failure, "kind")?;
    Ok(Some(match kind {
        "deadlock" => Failure::Deadlock,
        "panic" => Failure::Panic(str_field(failure, "message")?.to_string()),
        "too-many-events" => Failure::TooManyEvents(u64_field(failure, "events")?),
        "infra" => Failure::Infra(str_field(failure, "message")?.to_string()),
        other => return Err(format!("unknown failure kind `{other}`")),
    }))
}

/// Decodes one frame payload.
pub fn parse_frame(payload: &str) -> Result<Frame, String> {
    let doc = JsonValue::parse(payload).map_err(|e| format!("invalid frame JSON: {e}"))?;
    match str_field(&doc, "frame")? {
        "done" => Ok(Frame::Done(parse_stop_reason(str_field(
            &doc,
            "stop_reason",
        )?)?)),
        "coverage" => Ok(Frame::Coverage(parse_coverage(&doc)?)),
        "metrics" => {
            let alloc = doc.get("alloc").ok_or("missing `alloc`")?;
            let phase = doc.get("phase").ok_or("missing `phase`")?;
            let threads = doc.get("threads").ok_or("missing `threads`")?;
            let graph = doc.get("graph").ok_or("missing `graph`")?;
            Ok(Frame::Metrics(BatchMetrics {
                alloc: AllocStats {
                    fresh_executions: u64_field(alloc, "fresh_executions")?,
                    recycled_executions: u64_field(alloc, "recycled_executions")?,
                    clock_spills: u64_field(alloc, "clock_spills")?,
                },
                phase: PhaseProfile::from_raw(
                    phase_array_field(phase, "nanos")?,
                    phase_array_field(phase, "calls")?,
                ),
                threads: ThreadSpawnStats {
                    pooled_dispatches: u64_field(threads, "pooled_dispatches")?,
                    fresh_spawns: u64_field(threads, "fresh_spawns")?,
                },
                graph: MoGraphPerfStats {
                    order_reorders: u64_field(graph, "order_reorders")?,
                    reorder_nodes: u64_field(graph, "reorder_nodes")?,
                    reach_fast_negative: u64_field(graph, "reach_fast_negative")?,
                    reach_cv_checks: u64_field(graph, "reach_cv_checks")?,
                    compactions: u64_field(graph, "compactions")?,
                    compacted_nodes: u64_field(graph, "compacted_nodes")?,
                    peak_live_nodes: u64_field(graph, "peak_live_nodes")?,
                },
            }))
        }
        "exec" => {
            let mut races = Vec::new();
            for row in doc
                .get("races")
                .and_then(JsonValue::as_array)
                .ok_or("missing `races` array")?
            {
                races.push(RaceReport {
                    label: str_field(row, "label")?.to_string(),
                    obj: ObjId(u64_field(row, "obj")?),
                    offset: u64_field(row, "offset")? as u32,
                    kind: parse_race_kind(str_field(row, "kind")?)?,
                    current_tid: ThreadId::from_index(u64_field(row, "current_tid")? as usize),
                    current_kind: parse_access_kind(str_field(row, "current_kind")?)?,
                    prior_tid: ThreadId::from_index(u64_field(row, "prior_tid")? as usize),
                    prior_atomic: bool_field(row, "prior_atomic")?,
                });
            }
            Ok(Frame::Exec(Box::new(ExecutionReport {
                execution_index: u64_field(&doc, "execution")?,
                strategy: str_field(&doc, "strategy")?.to_string(),
                races,
                failure: parse_failure(&doc)?,
                stats: parse_stats(doc.get("stats").ok_or("missing `stats`")?)?,
                elided_volatile_races: u64_field(&doc, "elided_volatile_races")?,
                // Coverage is not carried per execution: the child folds
                // its executions' signatures locally and ships one
                // batched `coverage` frame (mergeable, so batching
                // cannot change the aggregate).
                coverage: Default::default(),
            })))
        }
        other => Err(format!("unknown frame type `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11tester::{Config, Model, TestReport};

    #[test]
    fn framing_round_trips_and_detects_truncation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").expect("write");
        write_frame(&mut buf, "x").expect("write");
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).expect("frame"), Some("{\"a\":1}".into()));
        assert_eq!(read_frame(&mut r).expect("frame"), Some("x".into()));
        assert_eq!(read_frame(&mut r).expect("eof"), None);
        // A stream cut mid-frame errors instead of returning a frame.
        let cut = &buf[..buf.len() - 3];
        let mut r = std::io::BufReader::new(cut);
        assert!(read_frame(&mut r).is_ok());
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn exec_frames_round_trip_real_reports_losslessly() {
        // Run real executions (some racy) and require the decoded
        // report to absorb identically to the original — the exact
        // property fork-isolated byte-identity rests on.
        let _gate = crate::coverage_gate_lock();
        let mut model = Model::new(Config::new().with_seed(0xF0));
        let mut direct = TestReport::default();
        let mut wired = TestReport::default();
        for _ in 0..10 {
            let report = model.run(|| {
                c11tester_workloads::ds::rwlock_buggy::run_buggy();
            });
            let payload = exec_payload(&report);
            let Frame::Exec(decoded) = parse_frame(&payload).expect("parses") else {
                panic!("exec frame decoded as done");
            };
            assert_eq!(decoded.execution_index, report.execution_index);
            assert_eq!(decoded.strategy, report.strategy);
            assert_eq!(decoded.races, report.races);
            assert_eq!(decoded.failure, report.failure);
            assert_eq!(decoded.stats, report.stats);
            direct.absorb(&report);
            wired.absorb(&decoded);
        }
        assert_eq!(direct, wired);
        assert!(direct.executions_with_race > 0, "workload should race");
    }

    #[test]
    fn failure_variants_round_trip() {
        for failure in [
            Failure::Deadlock,
            Failure::Panic("assert \"x\" failed\n".to_string()),
            Failure::TooManyEvents(12345),
        ] {
            let report = ExecutionReport {
                execution_index: 9,
                strategy: "pct2".to_string(),
                races: Vec::new(),
                failure: Some(failure.clone()),
                stats: Default::default(),
                elided_volatile_races: 2,
                coverage: Default::default(),
            };
            let Frame::Exec(decoded) = parse_frame(&exec_payload(&report)).expect("parses") else {
                panic!("wrong frame type");
            };
            assert_eq!(decoded.failure, Some(failure));
            assert_eq!(decoded.elided_volatile_races, 2);
        }
    }

    #[test]
    fn coverage_frames_round_trip() {
        use c11tester::{AccessKind, RaceKind};
        use c11tester_core::ExecCoverage;

        let mut sig = ExecCoverage::collecting();
        sig.record_rf(3, 0, 1);
        sig.record_rf(3, 1, 0);
        sig.record_mo(3, 0, 1);
        sig.record_switch(17, 1);
        sig.record_switch(29, 0);
        let race = RaceReport {
            label: "flag \"x\"".to_string(),
            obj: c11tester_core::ObjId(3),
            offset: 0,
            kind: RaceKind::ReadAfterWrite,
            current_tid: ThreadId::from_index(1),
            current_kind: AccessKind::NonAtomic,
            prior_tid: ThreadId::from_index(0),
            prior_atomic: false,
        };
        let mut map = CoverageMap::new();
        map.record(4, &sig, std::slice::from_ref(&race));
        map.record(9, &sig, &[race]);
        // Hashes use the full u64 range; make sure a top-bit-set value
        // survives the wire as a plain JSON number.
        let mut wide = ExecCoverage::collecting();
        wide.record_switch(u64::MAX, u64::MAX - 1);
        map.record(11, &wide, &[]);

        let payload = coverage_payload(&map);
        let Frame::Coverage(decoded) = parse_frame(&payload).expect("parses") else {
            panic!("wrong frame type");
        };
        assert_eq!(decoded, map);
        // Re-encoding the decoded map is byte-identical (stable order).
        assert_eq!(coverage_payload(&decoded), payload);
        // An empty map round-trips too (coverage-enabled raceless batch).
        let empty = CoverageMap::new();
        let Frame::Coverage(decoded) = parse_frame(&coverage_payload(&empty)).expect("parses")
        else {
            panic!("wrong frame type");
        };
        assert_eq!(decoded, empty);
    }

    #[test]
    fn metrics_frames_round_trip() {
        use c11tester_core::AllocStats;
        use c11tester_telemetry::Phase;
        let mut m = BatchMetrics {
            alloc: AllocStats {
                fresh_executions: 1,
                recycled_executions: 63,
                clock_spills: 5,
            },
            phase: PhaseProfile::default(),
            threads: ThreadSpawnStats {
                pooled_dispatches: 188,
                fresh_spawns: 4,
            },
            graph: MoGraphPerfStats {
                order_reorders: 3,
                reorder_nodes: 11,
                reach_fast_negative: 5_000,
                reach_cv_checks: 700,
                compactions: 2,
                compacted_nodes: 96,
                peak_live_nodes: 128,
            },
        };
        m.phase.record(Phase::Scheduling, 123_456);
        m.phase.record(Phase::Prune, 42);
        let Frame::Metrics(decoded) = parse_frame(&metrics_payload(&m)).expect("parses") else {
            panic!("wrong frame type");
        };
        assert_eq!(decoded, m);
        // An empty profile round-trips too (profiling disabled child).
        let empty = BatchMetrics::default();
        let Frame::Metrics(decoded) = parse_frame(&metrics_payload(&empty)).expect("parses") else {
            panic!("wrong frame type");
        };
        assert_eq!(decoded, empty);
    }

    #[test]
    fn done_frames_round_trip_every_stop_reason() {
        for reason in [
            StopReason::BudgetExhausted,
            StopReason::FirstBug,
            StopReason::Deadline,
        ] {
            let Frame::Done(decoded) = parse_frame(&done_payload(reason)).expect("parses") else {
                panic!("wrong frame type");
            };
            assert_eq!(decoded, reason);
        }
        assert!(parse_frame("{\"frame\":\"nope\"}").is_err());
        assert!(parse_frame("not json").is_err());
    }
}
